// The durable storage layer: version-5 snapshots. A v5 snapshot is not
// one monolithic blob but a thin manifest plus segment packages:
//
//   - <path>              the manifest (same magic/CRC framing as v2–v4)
//   - <base>.g<G>-s<S>.sspk  one segment package per non-empty shard,
//     in the manifest's directory (internal/segpack format: per-block
//     CRC32, tagged metadata with the shard's route summary and stats)
//   - <path>.wal          the write-ahead log holding the mutations
//     applied after the manifest's checkpoint (internal/wal format)
//
// Manifest payload (after magic, version byte 5, payload CRC32 — the
// same framing readSnapshot validates for v2–v4):
//
//	tokenizer name: uvarint len + bytes
//	shards u32, generation u64, walStart u64
//	nextID u32 (id-space size), liveN u32
//	dead docs: u32 count, per doc: uvarint id + uvarint len + source
//	per shard: summary scalars (docs u32, lenMin f64, lenMax f64,
//	           hot u32, sketch slots u32, occupied u32)
//	segpacks: u32 count, per ref: uvarint len + basename, shard u32,
//	          docs u32
//
// The manifest carries no routing table: shard membership of the
// packages IS the routing. Recovery loads the manifest, reads every
// package (verifying block checksums), reconstructs the document log —
// live docs from the packages, tombstoned docs from the manifest's dead
// list, together covering the id space exactly — replays it into a
// live engine, compacts, then replays the WAL tail (records past
// walStart) through the normal mutation path. The recovered engine
// answers queries bitwise-identically to an engine that replayed the
// same surviving history with a compaction at the checkpoint.
//
// Checkpoints follow write-ahead ordering: new-generation packages
// first, then the manifest (temp file + rename, directory fsync), then
// WAL truncation, then old-generation package removal. A crash between
// any two steps leaves a recoverable store — at worst a longer WAL tail
// or orphaned package files the next checkpoint overwrites.
package setsim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/route"
	"repro/internal/segpack"
	"repro/internal/tokenize"
	"repro/internal/wal"
)

// SyncPolicy selects the WAL durability mode of a durable engine. The
// zero value is SyncGroup (batched fsync with group commit).
type SyncPolicy = wal.SyncPolicy

// Re-exported sync policies.
const (
	SyncGroup  = wal.SyncGroup
	SyncAlways = wal.SyncAlways
	SyncOff    = wal.SyncOff
)

// ParseSyncPolicy parses "always", "group" or "off".
func ParseSyncPolicy(s string) (SyncPolicy, error) { return wal.ParsePolicy(s) }

// DurableOptions configure OpenDurable's write-ahead log.
type DurableOptions struct {
	// Sync is the WAL durability policy (default SyncGroup).
	Sync SyncPolicy
	// GroupWindow is the group-commit coalescing window (default 2ms).
	GroupWindow time.Duration
}

// SegpackRef is one segment package referenced by a v5 manifest.
type SegpackRef struct {
	// Name is the package's file name, relative to the manifest's
	// directory.
	Name string
	// Shard is the partition the package holds.
	Shard int
	// Docs is the number of live documents in the package.
	Docs int
}

// packDocsRecord is the record name holding a package's document list.
const packDocsRecord = "docs"

// manifestV5 is a decoded (or to-be-written) version-5 manifest.
type manifestV5 struct {
	tkName   string
	shards   int
	gen      uint64
	walStart uint64
	nextID   int
	liveN    int
	dead     []core.DocRef // ascending id
	sums     []ShardSummaryInfo
	refs     []SegpackRef
}

func packName(base string, gen uint64, shard int) string {
	return fmt.Sprintf("%s.g%d-s%d.sspk", base, gen, shard)
}

func walPath(path string) string { return path + ".wal" }

// writeManifestFile atomically replaces path with the serialized
// manifest: temp file, fsync, rename, directory fsync.
func writeManifestFile(path string, m *manifestV5) error {
	var p payloadBuf
	p.str(m.tkName)
	p.u32(uint32(m.shards))
	p.u64(m.gen)
	p.u64(m.walStart)
	p.u32(uint32(m.nextID))
	p.u32(uint32(m.liveN))
	p.u32(uint32(len(m.dead)))
	for _, d := range m.dead {
		p.uvarint(uint64(d.ID))
		p.str(d.Source)
	}
	for _, s := range m.sums {
		p.u32(uint32(s.Docs))
		p.f64(s.LenMin)
		p.f64(s.LenMax)
		p.u32(uint32(s.HotTokens))
		p.u32(uint32(s.SketchSlots))
		p.u32(uint32(s.SketchOccupied))
	}
	p.u32(uint32(len(m.refs)))
	for _, r := range m.refs {
		p.str(r.Name)
		p.u32(uint32(r.Shard))
		p.u32(uint32(r.Docs))
	}

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = writeFramedSnapshot(f, snapV5, p.b)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// readManifest decodes a version-5 manifest from r (the whole file,
// magic onward). Structural failures wrap collection.ErrBadCollection,
// matching the v2–v4 reader's contract.
func readManifest(r io.Reader) (*manifestV5, error) {
	payload, err := readFramedSnapshot(r, snapV5)
	if err != nil {
		return nil, err
	}
	p := payloadRd{b: payload}
	m := &manifestV5{}
	m.tkName = p.str("tokenizer name")
	m.shards = int(p.u32("shard count"))
	m.gen = p.u64("generation")
	m.walStart = p.u64("wal start")
	m.nextID = int(p.u32("id-space size"))
	m.liveN = int(p.u32("live count"))
	nDead := int(p.u32("dead count"))
	if p.err == nil && (m.shards < 1 || nDead > m.nextID || m.liveN > m.nextID) {
		return nil, fmt.Errorf("%w: inconsistent manifest counts (shards %d, dead %d, live %d, ids %d)",
			collection.ErrBadCollection, m.shards, nDead, m.liveN, m.nextID)
	}
	for i := 0; i < nDead && p.err == nil; i++ {
		id := p.uvarint("dead id")
		src := p.str("dead source")
		m.dead = append(m.dead, core.DocRef{ID: collection.SetID(id), Source: src})
	}
	m.sums = make([]ShardSummaryInfo, 0, maxInt(m.shards, 0))
	for i := 0; i < m.shards && p.err == nil; i++ {
		var s ShardSummaryInfo
		s.Docs = int(p.u32("summary docs"))
		s.LenMin = p.f64("summary lenMin")
		s.LenMax = p.f64("summary lenMax")
		s.HotTokens = int(p.u32("summary hot tokens"))
		s.SketchSlots = int(p.u32("summary sketch slots"))
		s.SketchOccupied = int(p.u32("summary sketch occupied"))
		m.sums = append(m.sums, s)
	}
	nRefs := int(p.u32("segpack count"))
	for i := 0; i < nRefs && p.err == nil; i++ {
		var ref SegpackRef
		ref.Name = p.str("segpack name")
		ref.Shard = int(p.u32("segpack shard"))
		ref.Docs = int(p.u32("segpack docs"))
		if p.err == nil && (ref.Shard < 0 || ref.Shard >= m.shards || ref.Name == "" ||
			ref.Name != filepath.Base(ref.Name)) {
			return nil, fmt.Errorf("%w: bad segpack ref %q (shard %d of %d)",
				collection.ErrBadCollection, ref.Name, ref.Shard, m.shards)
		}
		m.refs = append(m.refs, ref)
	}
	if p.err != nil {
		return nil, p.err
	}
	if p.pos != len(p.b) {
		return nil, fmt.Errorf("%w: %d trailing manifest bytes", collection.ErrBadCollection, len(p.b)-p.pos)
	}
	return m, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// writePackFile writes one shard's segment package: the document list
// record plus inspection metadata (shard, generation, the stats
// snapshot the segment was built under, and its route-summary scalars).
func writePackFile(path string, shard int, gen uint64, docs []core.DocRef, sum ShardSummaryInfo, nextID, liveN int) error {
	w, err := segpack.Create(path)
	if err != nil {
		return err
	}
	var p payloadBuf
	p.u32(uint32(len(docs)))
	for _, d := range docs {
		p.uvarint(uint64(d.ID))
		p.str(d.Source)
	}
	if err := w.AddRecord(packDocsRecord, p.b); err != nil {
		w.Abort()
		return err
	}
	w.SetMeta("shard", []byte(strconv.Itoa(shard)))
	w.SetMeta("gen", []byte(strconv.FormatUint(gen, 10)))
	w.SetMeta("docs", []byte(strconv.Itoa(len(docs))))
	w.SetMeta("stats.nextid", []byte(strconv.Itoa(nextID)))
	w.SetMeta("stats.liven", []byte(strconv.Itoa(liveN)))
	w.SetMeta("summary.docs", []byte(strconv.Itoa(sum.Docs)))
	w.SetMeta("summary.lenrange", []byte(fmt.Sprintf("%g..%g", sum.LenMin, sum.LenMax)))
	w.SetMeta("summary.hottokens", []byte(strconv.Itoa(sum.HotTokens)))
	w.SetMeta("summary.sketch", []byte(fmt.Sprintf("%d/%d", sum.SketchOccupied, sum.SketchSlots)))
	if err := w.Close(); err != nil {
		os.Remove(path)
		return err
	}
	return nil
}

// readPackDocs opens one segment package, verifies the document
// record's block checksums, and decodes the (id, source) list.
func readPackDocs(path string) ([]core.DocRef, error) {
	fr, err := segpack.Open(path)
	if err != nil {
		if errors.Is(err, segpack.ErrVersion) {
			return nil, fmt.Errorf("%w: %v", ErrUnknownVersion, err)
		}
		return nil, err
	}
	defer fr.Close()
	raw, err := fr.ReadRecord(packDocsRecord)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", collection.ErrBadCollection, path, err)
	}
	p := payloadRd{b: raw}
	n := int(p.u32("doc count"))
	docs := make([]core.DocRef, 0, minInt(n, len(raw)))
	last := int64(-1)
	for i := 0; i < n && p.err == nil; i++ {
		id := p.uvarint("doc id")
		src := p.str("doc source")
		if p.err == nil && int64(id) <= last {
			return nil, fmt.Errorf("%w: %s: document ids not ascending", collection.ErrBadCollection, path)
		}
		last = int64(id)
		docs = append(docs, core.DocRef{ID: collection.SetID(id), Source: src})
	}
	if p.err != nil {
		return nil, fmt.Errorf("%w: %s: %v", collection.ErrBadCollection, path, p.err)
	}
	if p.pos != len(p.b) {
		return nil, fmt.Errorf("%w: %s: trailing bytes in document record", collection.ErrBadCollection, path)
	}
	return docs, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// storeState is a fully loaded v5 store: the manifest, the document log
// it reconstructs (live docs from the packages, dead from the dead
// list), the membership-derived routing table, and the WAL tail read
// without modifying the file.
type storeState struct {
	m       *manifestV5
	tk      Tokenizer
	log     []core.DocState // manifest checkpoint state, length nextID
	routing []int32         // shard per id (dead docs: shard 0)
	tail    []wal.Record    // records past walStart, intact prefix only
	walTorn bool
}

// loadStore reads and cross-validates a v5 store rooted at path. r is
// the manifest file, positioned at its start.
func loadStore(path string, r io.Reader) (*storeState, error) {
	m, err := readManifest(r)
	if err != nil {
		return nil, err
	}
	tk, err := tokenize.ParseName(m.tkName)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", collection.ErrBadCollection, err)
	}
	st := &storeState{
		m:       m,
		tk:      tk,
		log:     make([]core.DocState, m.nextID),
		routing: make([]int32, m.nextID),
	}
	covered := make([]bool, m.nextID)
	live := 0
	dir := filepath.Dir(path)
	for _, ref := range m.refs {
		docs, err := readPackDocs(filepath.Join(dir, ref.Name))
		if err != nil {
			return nil, err
		}
		if len(docs) != ref.Docs {
			return nil, fmt.Errorf("%w: %s holds %d docs, manifest says %d",
				collection.ErrBadCollection, ref.Name, len(docs), ref.Docs)
		}
		for _, d := range docs {
			if int(d.ID) >= m.nextID || covered[d.ID] {
				return nil, fmt.Errorf("%w: %s: document id %d out of range or duplicated",
					collection.ErrBadCollection, ref.Name, d.ID)
			}
			covered[d.ID] = true
			st.log[d.ID] = core.DocState{Source: d.Source}
			st.routing[d.ID] = int32(ref.Shard)
			live++
		}
	}
	for _, d := range m.dead {
		if int(d.ID) >= m.nextID || covered[d.ID] {
			return nil, fmt.Errorf("%w: dead document id %d out of range or duplicated",
				collection.ErrBadCollection, d.ID)
		}
		covered[d.ID] = true
		st.log[d.ID] = core.DocState{Source: d.Source, Deleted: true}
	}
	for id, ok := range covered {
		if !ok {
			return nil, fmt.Errorf("%w: document id %d missing from packages and dead list",
				collection.ErrBadCollection, id)
		}
	}
	if live != m.liveN {
		return nil, fmt.Errorf("%w: packages hold %d live docs, manifest says %d",
			collection.ErrBadCollection, live, m.liveN)
	}

	// The WAL tail, read-only: a missing log means no mutations since
	// the checkpoint; a torn tail is the crash we are recovering from.
	winfo, err := wal.Replay(walPath(path), m.walStart, func(rec wal.Record) error {
		st.tail = append(st.tail, rec)
		return nil
	})
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("setsim: wal %s: %w", walPath(path), err)
	}
	st.walTorn = winfo.Torn
	return st, nil
}

// foldTail applies the WAL tail to a document-log copy, yielding the
// post-crash state as a plain log for the static loaders.
func (st *storeState) foldTail() ([]core.DocState, error) {
	log := append([]core.DocState(nil), st.log...)
	for _, rec := range st.tail {
		switch rec.Op {
		case wal.OpInsert:
			log = append(log, core.DocState{Source: rec.Source})
		case wal.OpDelete:
			if int(rec.ID) >= len(log) || log[rec.ID].Deleted {
				return nil, fmt.Errorf("%w: wal record %d deletes unknown document %d",
					collection.ErrBadCollection, rec.Seq, rec.ID)
			}
			log[rec.ID].Deleted = true
		}
	}
	return log, nil
}

// replayTail drives the WAL tail through the engine's normal mutation
// path (the engine has no WAL attached yet, so nothing is re-journaled
// — the records are already in the log file).
func (st *storeState) replayTail(le *LiveEngine) error {
	for _, rec := range st.tail {
		switch rec.Op {
		case wal.OpInsert:
			if _, err := le.Insert(rec.Source); err != nil {
				return fmt.Errorf("setsim: wal replay record %d: %w", rec.Seq, err)
			}
		case wal.OpDelete:
			if !le.Delete(collection.SetID(rec.ID)) {
				return fmt.Errorf("%w: wal record %d deletes unknown document %d",
					collection.ErrBadCollection, rec.Seq, rec.ID)
			}
		}
	}
	return nil
}

// info assembles the SnapshotInfo of a loaded v5 store. docs/live are
// the post-tail counts the caller derived from the opened engine.
func (st *storeState) info(docs, live int) SnapshotInfo {
	m := st.m
	info := SnapshotInfo{
		Version:    snapV5,
		Docs:       docs,
		Live:       live,
		Shards:     m.shards,
		Routed:     true,
		Summaries:  m.sums,
		Generation: m.gen,
		WALStart:   m.walStart,
		WALTail:    len(st.tail),
		WALTorn:    st.walTorn,
		Segpacks:   m.refs,
	}
	info.RouteCounts = make([]int, m.shards)
	for _, ref := range m.refs {
		info.RouteCounts[ref.Shard] += ref.Docs
	}
	return info
}

// openLiveV5 is the v5 arm of OpenLive: replay the checkpoint log,
// compact, then replay the WAL tail through the mutation path — the
// recovery algorithm. The resulting engine is bitwise-equivalent to one
// that replayed the surviving history with a compaction at the
// checkpoint.
func openLiveV5(path string, st *storeState, cfg LiveConfig) (*LiveEngine, SnapshotInfo, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = st.m.shards
	}
	le := core.NewLive(st.tk, cfg)
	for _, d := range st.log {
		id, err := le.Insert(d.Source)
		if err != nil {
			le.Close()
			return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: replay: %w", path, err)
		}
		if d.Deleted {
			le.Delete(id)
		}
	}
	le.Compact()
	if err := st.replayTail(le); err != nil {
		le.Close()
		return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: %w", path, err)
	}
	return le, st.info(le.NumDocs(), le.NumLive()), nil
}

// saveLiveV5 writes a settled engine as a fresh v5 store: generation-1
// packages plus the manifest, removing any stale WAL (this snapshot
// starts a new history; walStart is 0 and no records precede it).
func saveLiveV5(path string, le *LiveEngine) error {
	log := le.Log()
	routing := le.Routing()
	shards := le.NumShards()
	sums := summaryScalars(le)

	live := make([][]core.DocRef, shards)
	var dead []core.DocRef
	liveN := 0
	for id, d := range log {
		if d.Deleted {
			dead = append(dead, core.DocRef{ID: collection.SetID(id), Source: d.Source})
			continue
		}
		sh := routing[id]
		live[sh] = append(live[sh], core.DocRef{ID: collection.SetID(id), Source: d.Source})
		liveN++
	}

	m := &manifestV5{
		tkName: le.Tokenizer().Name(),
		shards: shards,
		gen:    1,
		nextID: len(log),
		liveN:  liveN,
		dead:   dead,
		sums:   sums,
	}
	dir, base := filepath.Dir(path), filepath.Base(path)
	var written []string
	cleanup := func() {
		for _, name := range written {
			os.Remove(filepath.Join(dir, name))
		}
	}
	for si, docs := range live {
		if len(docs) == 0 {
			continue
		}
		name := packName(base, m.gen, si)
		if err := writePackFile(filepath.Join(dir, name), si, m.gen, docs, sums[si], m.nextID, m.liveN); err != nil {
			cleanup()
			return err
		}
		written = append(written, name)
		m.refs = append(m.refs, SegpackRef{Name: name, Shard: si, Docs: len(docs)})
	}
	if err := writeManifestFile(path, m); err != nil {
		cleanup()
		return err
	}
	// A stale WAL from an earlier durable store at this path would
	// replay against the fresh snapshot; this save supersedes it.
	if err := os.Remove(walPath(path)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// summaryScalars extracts each shard's persisted summary scalars.
func summaryScalars(le *LiveEngine) []ShardSummaryInfo {
	sums := make([]ShardSummaryInfo, le.NumShards())
	for i, s := range le.ShardSummaries() {
		if s == nil || i >= len(sums) {
			continue
		}
		sums[i] = scalarsOf(s)
	}
	return sums
}

func scalarsOf(s *route.Summary) ShardSummaryInfo {
	var si ShardSummaryInfo
	si.Docs = s.Docs()
	si.LenMin, si.LenMax = s.LenRange()
	si.HotTokens = s.HotTokens()
	si.SketchSlots, si.SketchOccupied = s.SketchSlots()
	return si
}

// durableStore persists checkpoints for a durable engine: it is the
// core.CheckpointSink attached by OpenDurable. Checkpoint runs under
// the engine's compaction mutex, so fields need no further locking.
type durableStore struct {
	path      string
	dir, base string
	tkName    string
	wal       *wal.Log
	gen       uint64
	curPacks  []string // basenames the current manifest references
}

// Checkpoint writes the compaction round's state as a new generation:
// packages, manifest (atomic rename), WAL truncation, old-generation
// removal — in that order, so a crash at any point leaves a
// recoverable store.
func (ds *durableStore) Checkpoint(st *core.CheckpointState) error {
	gen := ds.gen + 1
	sums := make([]ShardSummaryInfo, len(st.Live))
	for si, s := range st.Summaries {
		if s != nil {
			sums[si] = scalarsOf(s)
		}
	}
	m := &manifestV5{
		tkName:   ds.tkName,
		shards:   len(st.Live),
		gen:      gen,
		walStart: st.WALSeq,
		nextID:   st.NextID,
		liveN:    st.LiveN,
		dead:     st.Dead,
		sums:     sums,
	}
	var written []string
	cleanup := func() {
		for _, name := range written {
			os.Remove(filepath.Join(ds.dir, name))
		}
	}
	for si, docs := range st.Live {
		if len(docs) == 0 {
			continue
		}
		name := packName(ds.base, gen, si)
		if err := writePackFile(filepath.Join(ds.dir, name), si, gen, docs, sums[si], st.NextID, st.LiveN); err != nil {
			cleanup()
			return err
		}
		written = append(written, name)
		m.refs = append(m.refs, SegpackRef{Name: name, Shard: si, Docs: len(docs)})
	}
	if err := writeManifestFile(ds.path, m); err != nil {
		cleanup()
		return err
	}
	// The checkpoint is durable from here: the remaining steps only
	// reclaim space, and their failure leaves a correct superset (the
	// WAL keeps records the manifest already covers; recovery skips
	// them via walStart).
	ds.wal.TruncateThrough(st.WALSeq) //nolint:errcheck // see above
	old := ds.curPacks
	ds.gen, ds.curPacks = gen, written
	kept := make(map[string]bool, len(written))
	for _, name := range written {
		kept[name] = true
	}
	for _, name := range old {
		if !kept[name] {
			os.Remove(filepath.Join(ds.dir, name))
		}
	}
	return nil
}

// OpenDurable opens (or creates) a durable store rooted at path: a v5
// manifest plus segment packages and a write-ahead log. Crash recovery
// runs first — manifest, packages, WAL tail with torn-tail truncation —
// then the engine is wired to journal every mutation into the WAL and
// persist checkpoints at full compactions (bounded by
// cfg.CheckpointEvery). A missing manifest starts an empty store; a
// v1–v4 snapshot at path is upgraded to v5 at the first checkpoint. In
// both of those cases a crash may have left a WAL with no manifest
// covering it (the first checkpoint never ran), so the whole surviving
// log replays into the engine before it goes live. Close the engine to
// flush and close the WAL.
func OpenDurable(path string, cfg LiveConfig, opts DurableOptions) (*LiveEngine, SnapshotInfo, error) {
	var le *LiveEngine
	var info SnapshotInfo
	var m *manifestV5
	tkName := ""

	f, err := os.Open(path)
	switch {
	case os.IsNotExist(err):
		// Fresh store: nothing checkpointed yet. Tokenizer defaults like
		// NewLive's callers expect.
		tk := tokenize.QGramTokenizer{Q: 3}
		if cfg.Shards <= 0 {
			cfg.Shards = 1
		}
		le = core.NewLive(tk, cfg)
		tkName = tk.Name()
		info = SnapshotInfo{Version: snapV5, Shards: cfg.Shards}
	case err != nil:
		return nil, SnapshotInfo{}, err
	default:
		version, verr := sniffVersion(f)
		if verr != nil {
			f.Close()
			return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: %w", path, verr)
		}
		if version == snapV5 {
			st, lerr := loadStore(path, f)
			f.Close()
			if lerr != nil {
				return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: %w", path, lerr)
			}
			le, info, err = openLiveV5(path, st, cfg)
			if err != nil {
				return nil, SnapshotInfo{}, err
			}
			m = st.m
			tkName = st.m.tkName
		} else {
			// Legacy upgrade path: load through the version-aware live
			// loader; the first checkpoint rewrites the store as v5.
			f.Close()
			le, info, err = OpenLive(path, cfg)
			if err != nil {
				return nil, SnapshotInfo{}, err
			}
			tkName = le.Tokenizer().Name()
		}
	}

	// Without a v5 manifest no checkpoint covers the WAL, so every
	// surviving record is tail: a crash before the first checkpoint.
	if m == nil {
		st := &storeState{}
		winfo, rerr := wal.Replay(walPath(path), 0, func(rec wal.Record) error {
			st.tail = append(st.tail, rec)
			return nil
		})
		switch {
		case rerr != nil && !os.IsNotExist(rerr):
			le.Close()
			return nil, SnapshotInfo{}, fmt.Errorf("setsim: wal %s: %w", walPath(path), rerr)
		case rerr == nil:
			if err := st.replayTail(le); err != nil {
				le.Close()
				return nil, SnapshotInfo{}, err
			}
			info.Docs, info.Live = le.NumDocs(), le.NumLive()
			info.WALTail = len(st.tail)
			info.WALTorn = winfo.Torn
		}
	}

	wlog, winfo, err := wal.Open(walPath(path), wal.Options{Sync: opts.Sync, GroupWindow: opts.GroupWindow})
	if err != nil {
		le.Close()
		return nil, SnapshotInfo{}, fmt.Errorf("setsim: wal %s: %w", walPath(path), err)
	}
	var walStart uint64
	ds := &durableStore{
		path:   path,
		dir:    filepath.Dir(path),
		base:   filepath.Base(path),
		tkName: tkName,
		wal:    wlog,
	}
	if m != nil {
		walStart = m.walStart
		ds.gen = m.gen
		for _, ref := range m.refs {
			ds.curPacks = append(ds.curPacks, ref.Name)
		}
	}
	// A log whose first record is past the checkpoint horizon has lost
	// history: a rotated WAL survived but its manifest did not, or the
	// manifest is older than the log.
	if winfo.First > walStart+1 {
		wlog.Close()
		le.Close()
		return nil, SnapshotInfo{}, fmt.Errorf("%w: wal starts at %d but manifest covers only through %d",
			collection.ErrBadCollection, winfo.First, walStart)
	}
	le.SetDurable(wlog, ds, walStart)
	return le, info, nil
}

// PackCheck is one package's verification outcome.
type PackCheck struct {
	Ref SegpackRef
	// Blocks is the number of block checksums verified.
	Blocks int
	// Err is nil when every block checksum matched.
	Err error
}

// VerifyReport is the outcome of Verify.
type VerifyReport struct {
	Version    int
	Generation uint64
	WALStart   uint64
	// WALRecords is the number of intact records in the WAL tail;
	// WALTorn reports a torn tail after them.
	WALRecords int
	WALTorn    bool
	Packs      []PackCheck
	// OK is true when the manifest parsed and every package verified.
	OK bool
}

// Verify checks a snapshot's integrity without building an engine: the
// manifest (or legacy snapshot) checksum, every package's every block
// checksum, and the WAL tail. Legacy versions (1–4) have one payload
// checksum, verified by parsing.
func Verify(path string) (*VerifyReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	version, err := sniffVersion(f)
	if err != nil {
		return nil, fmt.Errorf("setsim: verify %s: %w", path, err)
	}
	rep := &VerifyReport{Version: version, OK: true}
	if version == 1 {
		if _, err := collection.Read(f); err != nil {
			return nil, fmt.Errorf("setsim: verify %s: %w", path, err)
		}
		return rep, nil
	}
	if version != snapV5 {
		if _, _, _, _, err := readSnapshot(f); err != nil {
			return nil, fmt.Errorf("setsim: verify %s: %w", path, err)
		}
		return rep, nil
	}
	m, err := readManifest(f)
	if err != nil {
		return nil, fmt.Errorf("setsim: verify %s: %w", path, err)
	}
	rep.Generation, rep.WALStart = m.gen, m.walStart
	dir := filepath.Dir(path)
	for _, ref := range m.refs {
		chk := PackCheck{Ref: ref}
		fr, err := segpack.Open(filepath.Join(dir, ref.Name))
		if err != nil {
			chk.Err = err
			rep.OK = false
		} else {
			chk.Blocks, chk.Err = fr.Verify()
			if chk.Err != nil {
				rep.OK = false
			}
			fr.Close()
		}
		rep.Packs = append(rep.Packs, chk)
	}
	winfo, err := wal.Replay(walPath(path), m.walStart, nil)
	if err == nil {
		rep.WALRecords = winfo.Records
		rep.WALTorn = winfo.Torn
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("setsim: verify %s: wal: %w", path, err)
	}
	return rep, nil
}

// payloadBuf builds a little-endian snapshot payload.
type payloadBuf struct{ b []byte }

func (p *payloadBuf) uvarint(v uint64) {
	var buf [10]byte
	n := binary.PutUvarint(buf[:], v)
	p.b = append(p.b, buf[:n]...)
}

func (p *payloadBuf) str(s string) {
	p.uvarint(uint64(len(s)))
	p.b = append(p.b, s...)
}

func (p *payloadBuf) u32(v uint32) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	p.b = append(p.b, buf[:]...)
}

func (p *payloadBuf) u64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	p.b = append(p.b, buf[:]...)
}

func (p *payloadBuf) f64(v float64) { p.u64(math.Float64bits(v)) }

// payloadRd decodes a payload with a sticky, field-labelled error.
type payloadRd struct {
	b   []byte
	pos int
	err error
}

func (p *payloadRd) fail(what string) {
	if p.err == nil {
		p.err = fmt.Errorf("%w: truncated %s", collection.ErrBadCollection, what)
	}
}

func (p *payloadRd) uvarint(what string) uint64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Uvarint(p.b[p.pos:])
	if n <= 0 {
		p.fail(what)
		return 0
	}
	p.pos += n
	return v
}

func (p *payloadRd) str(what string) string {
	n := p.uvarint(what)
	if p.err != nil || uint64(len(p.b)-p.pos) < n {
		p.fail(what)
		return ""
	}
	s := string(p.b[p.pos : p.pos+int(n)])
	p.pos += int(n)
	return s
}

func (p *payloadRd) u32(what string) uint32 {
	if p.err != nil {
		return 0
	}
	if p.pos+4 > len(p.b) {
		p.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint32(p.b[p.pos:])
	p.pos += 4
	return v
}

func (p *payloadRd) u64(what string) uint64 {
	if p.err != nil {
		return 0
	}
	if p.pos+8 > len(p.b) {
		p.fail(what)
		return 0
	}
	v := binary.LittleEndian.Uint64(p.b[p.pos:])
	p.pos += 8
	return v
}

func (p *payloadRd) f64(what string) float64 { return math.Float64frombits(p.u64(what)) }
