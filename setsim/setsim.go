// Package setsim is the public API of the set-similarity selection
// library: a Go implementation of "Fast Indexes and Algorithms for Set
// Similarity Selection Queries" (Hadjieleftheriou, Chandel, Koudas,
// Srivastava; ICDE 2008).
//
// A selection query asks: given a query string decomposed into a token
// set, which strings in an indexed corpus have IDF similarity at least τ?
// The library indexes a corpus once (inverted lists in two sort orders,
// skip lists, optional extendible hashing and a relational baseline) and
// answers queries with any of the paper's algorithms — the Shortest-First
// (SF) algorithm is the recommended default.
//
// Basic usage:
//
//	idx := setsim.Build(corpus, setsim.QGramTokenizer{Q: 3}, setsim.ListsOnly())
//	q := idx.Prepare("query string")
//	results, stats, err := idx.Select(q, 0.8, setsim.SF, nil)
//
// Every entry point has a context-aware variant (Engine.SelectCtx,
// Engine.SelectTopKCtx, ...) that aborts mid-scan when the context is
// cancelled or its deadline expires, returning ctx.Err(). The engine also
// aggregates per-query latency/read/outcome metrics, exposed via
// Engine.Metrics().Snapshot().
//
// The concrete types live in internal packages; this package re-exports
// them through aliases, so the documented surface is exactly what a
// downstream module can reach.
package setsim

import (
	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/tokenize"
)

// Core query types.
type (
	// Engine indexes one corpus and answers selection queries.
	Engine = core.Engine
	// Config selects which indexes Build constructs.
	Config = core.Config
	// Query is a preprocessed query set (see Engine.Prepare).
	Query = core.Query
	// Options toggles Length Bounding and skip-index use per query.
	Options = core.Options
	// Result is one qualifying set and its IDF score in [0, 1].
	Result = core.Result
	// Stats reports the work a query performed.
	Stats = core.Stats
	// Algorithm selects a query-processing strategy.
	Algorithm = core.Algorithm
	// BatchResult is one query's outcome in Engine.SelectBatch.
	BatchResult = core.BatchResult
	// Pair is one matching pair of Engine.SelfJoin (A < B).
	Pair = core.Pair
	// ShardedEngine hash-partitions one corpus across several complete
	// engines sharing global statistics, fanning every query out and
	// merging with threshold-aware bounds. Results are bitwise-identical
	// to a monolithic Engine over the same corpus.
	ShardedEngine = core.ShardedEngine
)

// Metrics types (see Engine.Metrics).
type (
	// MetricsRegistry aggregates an engine's per-query metrics.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a point-in-time copy of a registry: outcome
	// counters plus latency and read-volume histograms.
	MetricsSnapshot = metrics.Snapshot
)

// Collection types.
type (
	// SetID identifies an indexed set; Engine.Collection().Source(id)
	// recovers the original string when sources are retained.
	SetID = collection.SetID
	// Collection is the indexed corpus with its statistics.
	Collection = collection.Collection
	// Builder accumulates strings into a Collection.
	Builder = collection.Builder
)

// Tokenizers.
type (
	// Tokenizer decomposes strings into tokens.
	Tokenizer = tokenize.Tokenizer
	// WordTokenizer splits on non-alphanumeric runs, lowercased.
	WordTokenizer = tokenize.WordTokenizer
	// QGramTokenizer emits overlapping q-grams (set Q; Pad optionally).
	QGramTokenizer = tokenize.QGramTokenizer
)

// The available algorithms (§III, §V–§VII of the paper).
const (
	// Naive scans the whole collection; the correctness oracle.
	Naive = core.Naive
	// SortByID merges id-sorted inverted lists (no pruning).
	SortByID = core.SortByID
	// SQL runs the relational baseline plan.
	SQL = core.SQL
	// TA is the Threshold Algorithm with random accesses.
	TA = core.TA
	// NRA is the no-random-access Threshold Algorithm.
	NRA = core.NRA
	// ITA is TA improved with the IDF semantic properties.
	ITA = core.ITA
	// INRA is NRA improved with the IDF semantic properties.
	INRA = core.INRA
	// SF is the Shortest-First algorithm — the paper's overall winner
	// and the recommended default.
	SF = core.SF
	// Hybrid combines iNRA's breadth-first scan with SF's cutoffs.
	Hybrid = core.Hybrid
)

// Errors returned by Select and SelectTopK.
var (
	ErrEmptyQuery   = core.ErrEmptyQuery
	ErrBadThreshold = core.ErrBadThreshold
	ErrNoHashIndex  = core.ErrNoHashIndex
	ErrNoRelational = core.ErrNoRelational
	ErrUnknownAlg   = core.ErrUnknownAlg
)

// Algorithms lists every selectable algorithm in presentation order.
func Algorithms() []Algorithm { return core.Algorithms() }

// NewBuilder starts an incremental corpus builder. keepSource retains
// the original strings for Result → string recovery.
func NewBuilder(tk Tokenizer, keepSource bool) *Builder {
	return collection.NewBuilder(tk, keepSource)
}

// NewEngine indexes a built collection.
func NewEngine(c *Collection, cfg Config) *Engine { return core.NewEngine(c, cfg) }

// Build tokenizes and indexes a corpus in one step. Strings that produce
// no tokens are skipped; ids are assigned in input order among the kept
// strings.
func Build(corpus []string, tk Tokenizer, cfg Config) *Engine {
	b := collection.NewBuilder(tk, true)
	for _, s := range corpus {
		b.Add(s)
	}
	return core.NewEngine(b.Build(), cfg)
}

// BuildSharded tokenizes a corpus once and indexes it across shards
// hash partitions, each a complete engine sharing the corpus-wide token
// dictionary and statistics. Queries fan out over a bounded worker pool
// and merge; every result — ids, scores, order — is bitwise-identical
// to Build over the same corpus. shards ≤ 1 builds a single partition.
// Call Close when done to stop the fan-out workers.
func BuildSharded(corpus []string, tk Tokenizer, shards int, cfg Config) *ShardedEngine {
	return core.BuildSharded(tk, corpus, true, shards, cfg)
}

// ListsOnly is the lightest index configuration: inverted lists and skip
// lists only. TA/iTA (which need extendible hashing) and the SQL
// baseline are unavailable; SF, Hybrid, iNRA, NRA and SortByID all work.
func ListsOnly() Config {
	return Config{NoHashes: true, NoRelational: true}
}
