package setsim

import (
	"repro/internal/core"
	"repro/internal/metrics"
)

// Mutable-corpus types. A LiveEngine is an LSM-style segment store:
// immutable segments (each indexed exactly like a static Engine, with
// the global corpus statistics baked in) plus a small memtable absorbing
// recent mutations, folded together by background compaction. Queries
// run against an atomically pinned snapshot and never block on writers.
type (
	// LiveEngine is a mutable engine: Insert/Delete/Upsert plus the full
	// selection surface of Engine, safe for concurrent use.
	LiveEngine = core.LiveEngine
	// LiveConfig configures a LiveEngine: the per-segment index Config
	// plus memtable flush threshold, segment-count bound and the
	// statistics drift bound that triggers a full recompaction.
	LiveConfig = core.LiveConfig
	// LiveQuery is a query pinned to one snapshot (see
	// LiveEngine.Prepare).
	LiveQuery = core.LiveQuery
	// LiveStats summarizes the segment store at one instant.
	LiveStats = core.LiveStats
	// LiveGauges is the segment-store section of a metrics snapshot.
	LiveGauges = metrics.LiveGauges
)

// Errors returned by the mutation API.
var (
	ErrNoTokens = core.ErrNoTokens
	ErrClosed   = core.ErrClosed
)

// NewLive creates an empty mutable engine.
func NewLive(tk Tokenizer, cfg LiveConfig) *LiveEngine { return core.NewLive(tk, cfg) }

// BuildLive bulk-loads a corpus into a mutable engine and compacts it
// into a single segment — the mutable twin of Build. Strings that
// produce no tokens are skipped; ids are assigned in input order among
// the kept strings.
func BuildLive(corpus []string, tk Tokenizer, cfg LiveConfig) *LiveEngine {
	return core.BuildLive(corpus, tk, cfg)
}
