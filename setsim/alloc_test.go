package setsim_test

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/setsim"
)

// durableCorpus mirrors the core package's random corpus generator so
// the durable-engine budgets here measure the same workload shape the
// in-memory budgets are pinned against.
func durableCorpus(n int, seed int64, alphabet int) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, n)
	for i := range out {
		ln := 3 + rng.Intn(14)
		var sb strings.Builder
		for j := 0; j < ln; j++ {
			sb.WriteByte(byte('a' + rng.Intn(alphabet)))
		}
		out[i] = sb.String()
	}
	return out
}

// openDurableCorpus builds a compacted durable engine (WAL attached,
// mutations journaled) over a random corpus.
func openDurableCorpus(t *testing.T, corpus []string, shards int) *setsim.LiveEngine {
	t.Helper()
	path := filepath.Join(t.TempDir(), "alloc.sssnap")
	le, _, err := setsim.OpenDurable(path, setsim.LiveConfig{
		Config: setsim.Config{NoRelational: true}, NoBackground: true,
		Shards: shards, CheckpointEvery: -1,
	}, setsim.DurableOptions{Sync: setsim.SyncOff})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range corpus {
		if _, err := le.Insert(s); err != nil {
			le.Close()
			t.Fatal(err)
		}
	}
	le.Compact()
	return le
}

// TestDurableWarmAllocations pins the warm query path of a durable
// engine to the same budgets as the in-memory one: attaching a WAL and
// journaling every mutation must not add a single allocation to warm
// selection (budget 1: the result copy out of the pooled scratch).
func TestDurableWarmAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	corpus := durableCorpus(5000, 3, 8)
	le := openDurableCorpus(t, corpus, 1)
	defer le.Close()

	queries := make([]setsim.LiveQuery, 8)
	for i := range queries {
		queries[i] = le.Prepare(corpus[i*13])
	}
	algs := []setsim.Algorithm{setsim.SF, setsim.INRA, setsim.NRA, setsim.SortByID, setsim.Hybrid, setsim.TA, setsim.ITA}
	for _, alg := range algs {
		for _, lq := range queries {
			if _, _, err := le.Select(lq, 0.6, alg, nil); err != nil {
				t.Fatalf("%v warm-up: %v", alg, err)
			}
		}
	}
	for _, alg := range algs {
		alg := alg
		i := 0
		allocs := testing.AllocsPerRun(4*len(queries), func() {
			lq := queries[i%len(queries)]
			i++
			if _, _, err := le.Select(lq, 0.6, alg, nil); err != nil {
				t.Fatalf("%v: %v", alg, err)
			}
		})
		if allocs > 1 {
			t.Errorf("%v: %.1f allocs per warm durable query, budget 1", alg, allocs)
		}
	}
}

// buildLiveCorpus is openDurableCorpus's WAL-free twin: the same
// corpus, config and compaction through plain NewLive, giving the
// baseline every durable measurement is compared against.
func buildLiveCorpus(t *testing.T, corpus []string, shards int) *setsim.LiveEngine {
	t.Helper()
	le := setsim.NewLive(setsim.QGramTokenizer{Q: 3}, setsim.LiveConfig{
		Config: setsim.Config{NoRelational: true}, NoBackground: true,
		Shards: shards, CheckpointEvery: -1,
	})
	for _, s := range corpus {
		if _, err := le.Insert(s); err != nil {
			le.Close()
			t.Fatal(err)
		}
	}
	le.Compact()
	return le
}

// measureWarm returns the warm per-query allocation count of fn over
// the prepared queries after a warm-up pass.
func measureWarm(t *testing.T, queries []setsim.LiveQuery, fn func(setsim.LiveQuery) error) float64 {
	t.Helper()
	for _, lq := range queries {
		if err := fn(lq); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	return testing.AllocsPerRun(4*len(queries), func() {
		lq := queries[i%len(queries)]
		i++
		if err := fn(lq); err != nil {
			t.Fatal(err)
		}
	})
}

// TestDurableWarmTopKAllocations pins the durable engine's warm top-k
// path to the WAL-free live engine's count: journaling must not add a
// single allocation.
func TestDurableWarmTopKAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	corpus := durableCorpus(5000, 3, 8)
	le := openDurableCorpus(t, corpus, 1)
	defer le.Close()
	base := buildLiveCorpus(t, corpus, 1)
	defer base.Close()

	queries := make([]setsim.LiveQuery, 8)
	baseQueries := make([]setsim.LiveQuery, 8)
	for i := range queries {
		queries[i] = le.Prepare(corpus[i*11])
		baseQueries[i] = base.Prepare(corpus[i*11])
	}
	for _, alg := range []setsim.Algorithm{setsim.INRA, setsim.SF} {
		alg := alg
		got := measureWarm(t, queries, func(lq setsim.LiveQuery) error {
			_, _, err := le.SelectTopK(lq, 10, alg, nil)
			return err
		})
		want := measureWarm(t, baseQueries, func(lq setsim.LiveQuery) error {
			_, _, err := base.SelectTopK(lq, 10, alg, nil)
			return err
		})
		if got > want {
			t.Errorf("topk %v: %.1f allocs per warm durable query, WAL-free baseline %.1f", alg, got, want)
		}
	}
}

// TestDurableWarmShardedAllocations pins the durable engine's sharded
// fan-out to the WAL-free live engine's count for the same shard
// counts: the K-proportional budget must be unchanged by the WAL.
func TestDurableWarmShardedAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	corpus := durableCorpus(5000, 3, 8)
	for _, K := range []int{1, 4} {
		le := openDurableCorpus(t, corpus, K)
		base := buildLiveCorpus(t, corpus, K)
		queries := make([]setsim.LiveQuery, 8)
		baseQueries := make([]setsim.LiveQuery, 8)
		for i := range queries {
			queries[i] = le.Prepare(corpus[i*13])
			baseQueries[i] = base.Prepare(corpus[i*13])
		}
		for _, alg := range []setsim.Algorithm{setsim.SF, setsim.Hybrid} {
			alg := alg
			got := measureWarm(t, queries, func(lq setsim.LiveQuery) error {
				_, _, err := le.Select(lq, 0.6, alg, nil)
				return err
			})
			want := measureWarm(t, baseQueries, func(lq setsim.LiveQuery) error {
				_, _, err := base.Select(lq, 0.6, alg, nil)
				return err
			})
			if got > want {
				t.Errorf("K=%d %v: %.1f allocs per warm durable sharded query, WAL-free baseline %.1f",
					K, alg, got, want)
			}
		}
		le.Close()
		base.Close()
	}
}
