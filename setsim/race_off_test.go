//go:build !race

package setsim_test

// raceEnabled reports whether the race detector is active; the
// allocation regression tests skip under -race, whose instrumentation
// allocates.
const raceEnabled = false
