//go:build race

package setsim_test

const raceEnabled = true
