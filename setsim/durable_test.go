package setsim_test

import (
	"encoding/binary"
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/collection"
	"repro/setsim"
)

// The WAL file layout the kill-point suite cuts against (mirrors
// internal/wal): a 16-byte header (7-byte magic, version byte, firstSeq
// u64) followed by frames of 9 bytes (payloadLen u32, crc u32, op u8)
// plus the payload. Insert payloads are the source bytes; delete
// payloads are the uvarint id. The suite asserts its arithmetic against
// the actual file size, so a format change fails loudly here.
const (
	walHeaderSize = 16
	walFrameHead  = 9
)

// walRec is one expected WAL record: an insert of src or a delete of id.
type walRec struct {
	del bool
	id  uint32
	src string
}

func (r walRec) frameLen() int {
	if !r.del {
		return walFrameHead + len(r.src)
	}
	var buf [10]byte
	return walFrameHead + binary.PutUvarint(buf[:], uint64(r.id))
}

// mutOp is one scripted mutation against the durable engine.
type mutOp struct {
	kind byte // 'i' insert, 'd' delete, 'u' upsert
	id   setsim.SetID
	src  string
}

// walRecs expands a script into the WAL records the engine journals:
// inserts and applied deletes are one record, an upsert of a live id is
// a delete followed by an insert.
func walRecs(ops []mutOp) []walRec {
	var recs []walRec
	for _, op := range ops {
		switch op.kind {
		case 'i':
			recs = append(recs, walRec{src: op.src})
		case 'd':
			recs = append(recs, walRec{del: true, id: uint32(op.id)})
		case 'u':
			recs = append(recs, walRec{del: true, id: uint32(op.id)}, walRec{src: op.src})
		}
	}
	return recs
}

// applyOps drives a script through the engine's public mutation API.
func applyOps(t *testing.T, le *setsim.LiveEngine, ops []mutOp) {
	t.Helper()
	for _, op := range ops {
		switch op.kind {
		case 'i':
			if _, err := le.Insert(op.src); err != nil {
				t.Fatalf("insert %q: %v", op.src, err)
			}
		case 'd':
			if !le.Delete(op.id) {
				t.Fatalf("delete %d did not apply", op.id)
			}
		case 'u':
			if _, err := le.Upsert(op.id, op.src); err != nil {
				t.Fatalf("upsert %d %q: %v", op.id, op.src, err)
			}
		}
	}
}

// applyRecs replays raw WAL records — the recovery primitive — through
// the mutation API, building the reference engine for a cut.
func applyRecs(t *testing.T, le *setsim.LiveEngine, recs []walRec) {
	t.Helper()
	for _, r := range recs {
		if r.del {
			if !le.Delete(setsim.SetID(r.id)) {
				t.Fatalf("reference delete %d did not apply", r.id)
			}
		} else if _, err := le.Insert(r.src); err != nil {
			t.Fatalf("reference insert %q: %v", r.src, err)
		}
	}
}

// killPointQueries are the probes every recovered engine must answer
// bitwise-identically to its reference.
var killPointQueries = []string{"main street 12", "market square one", "river bank walk"}

// requireBitwiseEqual fails unless got answers every probe — full
// selection at two thresholds plus top-k — bitwise-identically to want,
// and exposes the same document log (ids, sources, liveness).
func requireBitwiseEqual(t *testing.T, label string, got, want *setsim.LiveEngine) {
	t.Helper()
	if got.NumDocs() != want.NumDocs() || got.NumLive() != want.NumLive() {
		t.Fatalf("%s: recovered %d docs (%d live), want %d (%d live)",
			label, got.NumDocs(), got.NumLive(), want.NumDocs(), want.NumLive())
	}
	for id := 0; id < want.NumDocs(); id++ {
		s1, ok1 := want.Source(setsim.SetID(id))
		s2, ok2 := got.Source(setsim.SetID(id))
		if ok1 != ok2 || s1 != s2 {
			t.Fatalf("%s: doc %d is (%q,%v) after recovery, want (%q,%v)", label, id, s2, ok2, s1, ok1)
		}
	}
	for _, q := range killPointQueries {
		for _, tau := range []float64{0.4, 0.7} {
			r1, _, err1 := want.Select(want.Prepare(q), tau, setsim.SF, nil)
			r2, _, err2 := got.Select(got.Prepare(q), tau, setsim.SF, nil)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s: %q tau=%v: errors diverge: %v vs %v", label, q, tau, err2, err1)
			}
			if len(r1) != len(r2) {
				t.Fatalf("%s: %q tau=%v: %d results, want %d", label, q, tau, len(r2), len(r1))
			}
			for i := range r1 {
				if r1[i].ID != r2[i].ID ||
					math.Float64bits(r1[i].Score) != math.Float64bits(r2[i].Score) {
					t.Fatalf("%s: %q tau=%v result %d: {%d %.17g}, want {%d %.17g}",
						label, q, tau, i, r2[i].ID, r2[i].Score, r1[i].ID, r1[i].Score)
				}
			}
		}
		k1, _, err1 := want.SelectTopK(want.Prepare(q), 3, setsim.SF, nil)
		k2, _, err2 := got.SelectTopK(got.Prepare(q), 3, setsim.SF, nil)
		if (err1 == nil) != (err2 == nil) || len(k1) != len(k2) {
			t.Fatalf("%s: %q topk diverges: (%d,%v) vs (%d,%v)", label, q, len(k2), err2, len(k1), err1)
		}
		for i := range k1 {
			if k1[i].ID != k2[i].ID ||
				math.Float64bits(k1[i].Score) != math.Float64bits(k2[i].Score) {
				t.Fatalf("%s: %q topk result %d: {%d %.17g}, want {%d %.17g}",
					label, q, i, k2[i].ID, k2[i].Score, k1[i].ID, k1[i].Score)
			}
		}
	}
}

// The kill-point script: phase A is checkpointed, phase B lives only in
// the WAL. Ids are assigned densely from 0 in insert order.
var (
	killPhaseA = []mutOp{
		{kind: 'i', src: "main street 12"},    // id 0
		{kind: 'i', src: "mian street 12"},    // id 1
		{kind: 'i', src: "main st twelve"},    // id 2
		{kind: 'i', src: "south main road"},   // id 3
		{kind: 'i', src: "north main avenue"}, // id 4
		{kind: 'i', src: "market square one"}, // id 5
		{kind: 'i', src: "market sq 1"},       // id 6
		{kind: 'i', src: "old market lane"},   // id 7
		{kind: 'd', id: 1},
		{kind: 'd', id: 4},
	}
	killPhaseB = []mutOp{
		{kind: 'i', src: "river bank walk"}, // id 8
		{kind: 'i', src: "main street 13"},  // id 9
		{kind: 'd', id: 2},
		{kind: 'u', id: 6, src: "market square two"}, // delete 6 + insert id 10
		{kind: 'i', src: "river bank way"},           // id 11
		{kind: 'd', id: 9},
	}
)

func killPointConfig(shards int) setsim.LiveConfig {
	return setsim.LiveConfig{
		Config: setsim.ListsOnly(), NoBackground: true,
		Shards: shards, CheckpointEvery: -1,
	}
}

// buildKillPointStore runs the script against a durable store (phase A,
// forced checkpoint, phase B) and returns the WAL bytes plus the
// record boundaries of its tail.
func buildKillPointStore(t *testing.T, path string) (walBytes []byte, bounds []int, tail []walRec) {
	t.Helper()
	le, _, err := setsim.OpenDurable(path, killPointConfig(2), setsim.DurableOptions{Sync: setsim.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, le, killPhaseA)
	if err := le.CheckpointNow(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	applyOps(t, le, killPhaseB)
	le.Close()

	walBytes, err = os.ReadFile(path + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	// The checkpoint truncated the log, so the file holds exactly the
	// phase-B records. Cross-check the frame arithmetic against the file.
	tail = walRecs(killPhaseB)
	bounds = []int{walHeaderSize}
	for _, r := range tail {
		bounds = append(bounds, bounds[len(bounds)-1]+r.frameLen())
	}
	if bounds[len(bounds)-1] != len(walBytes) {
		t.Fatalf("frame arithmetic says the WAL is %d bytes, file is %d", bounds[len(bounds)-1], len(walBytes))
	}
	return walBytes, bounds, tail
}

// copyStoreFiles copies the manifest and every segment package (but not
// the WAL) from src's directory into dst's.
func copyStoreFiles(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(filepath.Dir(src))
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(src)
	for _, e := range entries {
		name := e.Name()
		if name != base && !strings.HasSuffix(name, ".sspk") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(filepath.Dir(src), name))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(filepath.Dir(dst), name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDurableKillPoints is the crash-recovery acceptance suite: the WAL
// is truncated at every byte offset — every record boundary and every
// mid-record position — and the recovered engine must answer queries
// bitwise-identically to a reference engine that replayed the surviving
// prefix (checkpointed history, a compaction, then the intact tail
// records).
func TestDurableKillPoints(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.sssnap")
	walBytes, bounds, tail := buildKillPointStore(t, path)

	// One reference per possible surviving-tail length.
	refs := make([]*setsim.LiveEngine, len(tail)+1)
	for k := range refs {
		ref := setsim.NewLive(setsim.QGramTokenizer{Q: 3}, killPointConfig(2))
		defer ref.Close()
		applyOps(t, ref, killPhaseA)
		ref.Compact()
		applyRecs(t, ref, tail[:k])
		refs[k] = ref
	}

	wdir := t.TempDir()
	wpath := filepath.Join(wdir, "store.sssnap")
	copyStoreFiles(t, path, wpath)
	for cut := 0; cut <= len(walBytes); cut++ {
		if err := os.WriteFile(wpath+".wal", walBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		k := 0
		for k < len(tail) && bounds[k+1] <= cut {
			k++
		}
		le, info, err := setsim.OpenLive(wpath, killPointConfig(0))
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		if info.Version != 5 || info.WALTail != k {
			t.Fatalf("cut %d: info %+v, want version 5 with %d surviving tail records", cut, info, k)
		}
		wantTorn := cut != bounds[k] && cut != 0
		if info.WALTorn != wantTorn {
			t.Fatalf("cut %d: WALTorn=%v, want %v", cut, info.WALTorn, wantTorn)
		}
		requireBitwiseEqual(t, "cut "+strconv.Itoa(cut), le, refs[k])
		le.Close()
	}

	// A missing WAL is a store with an empty tail, not an error.
	if err := os.Remove(wpath + ".wal"); err != nil {
		t.Fatal(err)
	}
	le, info, err := setsim.OpenLive(wpath, killPointConfig(0))
	if err != nil {
		t.Fatalf("recovery without WAL: %v", err)
	}
	if info.WALTail != 0 || info.WALTorn {
		t.Fatalf("recovery without WAL: info %+v", info)
	}
	requireBitwiseEqual(t, "no wal", le, refs[0])
	le.Close()
}

// TestDurableKillPointsBeforeFirstCheckpoint cuts a store that never
// checkpointed: no manifest exists and the whole history lives in the
// WAL. OpenDurable must recover the surviving prefix into an empty
// engine.
func TestDurableKillPointsBeforeFirstCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.sssnap")
	le, _, err := setsim.OpenDurable(path, killPointConfig(1), setsim.DurableOptions{Sync: setsim.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	applyOps(t, le, killPhaseA)
	le.Close()
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("manifest exists without a checkpoint (stat err %v)", err)
	}
	walBytes, err := os.ReadFile(path + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	recs := walRecs(killPhaseA)
	bounds := []int{walHeaderSize}
	for _, r := range recs {
		bounds = append(bounds, bounds[len(bounds)-1]+r.frameLen())
	}
	if bounds[len(bounds)-1] != len(walBytes) {
		t.Fatalf("frame arithmetic says the WAL is %d bytes, file is %d", bounds[len(bounds)-1], len(walBytes))
	}

	wdir := t.TempDir()
	wpath := filepath.Join(wdir, "store.sssnap")
	for cut := 0; cut <= len(walBytes); cut++ {
		if err := os.WriteFile(wpath+".wal", walBytes[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		k := 0
		for k < len(recs) && bounds[k+1] <= cut {
			k++
		}
		ref := setsim.NewLive(setsim.QGramTokenizer{Q: 3}, killPointConfig(1))
		applyRecs(t, ref, recs[:k])
		re, info, err := setsim.OpenDurable(wpath, killPointConfig(1), setsim.DurableOptions{Sync: setsim.SyncOff})
		if err != nil {
			t.Fatalf("cut %d: recovery failed: %v", cut, err)
		}
		if info.WALTail != k {
			t.Fatalf("cut %d: info %+v, want %d surviving records", cut, info, k)
		}
		requireBitwiseEqual(t, "pre-checkpoint cut "+strconv.Itoa(cut), re, ref)
		re.Close()
		ref.Close()
	}
}

// TestDurableReopenAtBoundaries reopens the cut store through the full
// durable path at every record boundary: recovery must repair the torn
// tail, accept new mutations, and persist them across another reopen —
// with and without an intervening checkpoint.
func TestDurableReopenAtBoundaries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.sssnap")
	walBytes, bounds, tail := buildKillPointStore(t, path)

	for k := 0; k <= len(tail); k++ {
		// Also land one byte inside the next record where there is one,
		// so the durable reopen exercises in-place torn-tail truncation.
		cuts := []int{bounds[k]}
		if k < len(tail) {
			cuts = append(cuts, bounds[k]+walFrameHead/2)
		}
		for _, cut := range cuts {
			wdir := t.TempDir()
			wpath := filepath.Join(wdir, "store.sssnap")
			copyStoreFiles(t, path, wpath)
			if err := os.WriteFile(wpath+".wal", walBytes[:cut], 0o644); err != nil {
				t.Fatal(err)
			}

			ref := setsim.NewLive(setsim.QGramTokenizer{Q: 3}, killPointConfig(2))
			applyOps(t, ref, killPhaseA)
			ref.Compact()
			applyRecs(t, ref, tail[:k])

			de, _, err := setsim.OpenDurable(wpath, killPointConfig(0), setsim.DurableOptions{Sync: setsim.SyncAlways})
			if err != nil {
				t.Fatalf("cut %d: durable reopen failed: %v", cut, err)
			}
			requireBitwiseEqual(t, "durable cut "+strconv.Itoa(cut), de, ref)

			const extra = "brand new doc after recovery"
			id, err := de.Insert(extra)
			if err != nil {
				t.Fatalf("cut %d: insert after recovery: %v", cut, err)
			}
			if k%2 == 0 {
				if err := de.CheckpointNow(); err != nil {
					t.Fatalf("cut %d: checkpoint after recovery: %v", cut, err)
				}
			}
			de.Close()

			re, _, err := setsim.OpenLive(wpath, killPointConfig(0))
			if err != nil {
				t.Fatalf("cut %d: reopen after append: %v", cut, err)
			}
			if s, ok := re.Source(id); !ok || s != extra {
				t.Fatalf("cut %d: post-recovery insert lost: (%q,%v)", cut, s, ok)
			}
			if re.NumLive() != ref.NumLive()+1 {
				t.Fatalf("cut %d: %d live after append, want %d", cut, re.NumLive(), ref.NumLive()+1)
			}
			re.Close()
			ref.Close()
		}
	}
}

// TestDurableVerify checks the integrity checker over a healthy store,
// a store with a torn WAL, and a store with a corrupted package block.
func TestDurableVerify(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.sssnap")
	walBytes, bounds, tail := buildKillPointStore(t, path)

	rep, err := setsim.Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK || rep.Version != 5 || rep.WALRecords != len(tail) || rep.WALTorn {
		t.Fatalf("healthy store: report %+v", rep)
	}
	if len(rep.Packs) == 0 {
		t.Fatal("healthy store: no packages in report")
	}
	for _, p := range rep.Packs {
		if p.Err != nil || p.Blocks < 1 {
			t.Fatalf("healthy pack %s: blocks %d err %v", p.Ref.Name, p.Blocks, p.Err)
		}
	}

	// Torn WAL: fewer records, torn flag, still OK (recoverable).
	if err := os.WriteFile(path+".wal", walBytes[:bounds[2]+3], 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = setsim.Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK || rep.WALRecords != 2 || !rep.WALTorn {
		t.Fatalf("torn store: report %+v", rep)
	}

	// Flip one payload byte in a package: its block checksum must fail
	// and the report must say which package.
	pack := filepath.Join(filepath.Dir(path), rep.Packs[0].Ref.Name)
	data, err := os.ReadFile(pack)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(pack, data, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = setsim.Verify(path)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatalf("corrupted store: report says OK: %+v", rep)
	}
	bad := 0
	for _, p := range rep.Packs {
		if p.Err != nil {
			bad++
		}
	}
	if bad != 1 {
		t.Fatalf("corrupted store: %d bad packages in report, want 1: %+v", bad, rep.Packs)
	}
}

// TestLoaderShortFiles: zero-length, magic-only and version-only
// prefixes of every format version must fail with a wrapped
// ErrBadCollection or ErrUnknownVersion from every loader — never a raw
// (or wrapped) io.EOF.
func TestLoaderShortFiles(t *testing.T) {
	const (
		colMagic  = "SSCOL1\n\x00"
		snapMagic = "SSSNAP\n\x00"
	)
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"collection-magic-only", []byte(colMagic)},
		{"snapshot-magic-only", []byte(snapMagic)},
		{"v2-version-only", append([]byte(snapMagic), 2)},
		{"v3-version-only", append([]byte(snapMagic), 3)},
		{"v4-version-only", append([]byte(snapMagic), 4)},
		{"v5-version-only", append([]byte(snapMagic), 5)},
		{"v5-header-no-payload", append([]byte(snapMagic), 5, 0xde, 0xad, 0xbe, 0xef)},
		{"unknown-version-only", append([]byte(snapMagic), 9)},
		{"truncated-magic", []byte(snapMagic[:4])},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "short")
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			loaders := []struct {
				name string
				open func(string) error
			}{
				{"Load", func(p string) error {
					_, err := setsim.Load(p, setsim.ListsOnly())
					return err
				}},
				{"Open", func(p string) error {
					_, _, err := setsim.Open(p, setsim.ListsOnly())
					return err
				}},
				{"OpenSharded", func(p string) error {
					_, _, err := setsim.OpenSharded(p, setsim.ListsOnly(), 2)
					return err
				}},
				{"OpenLive", func(p string) error {
					_, _, err := setsim.OpenLive(p, setsim.LiveConfig{Config: setsim.ListsOnly(), NoBackground: true})
					return err
				}},
				{"OpenDurable", func(p string) error {
					le, _, err := setsim.OpenDurable(p, setsim.LiveConfig{Config: setsim.ListsOnly(), NoBackground: true}, setsim.DurableOptions{})
					if err == nil {
						le.Close()
					}
					return err
				}},
			}
			for _, ld := range loaders {
				err := ld.open(path)
				if err == nil {
					t.Errorf("%s accepted a %d-byte file", ld.name, len(tc.data))
					continue
				}
				if !errors.Is(err, collection.ErrBadCollection) && !errors.Is(err, setsim.ErrUnknownVersion) {
					t.Errorf("%s: %v, want ErrBadCollection or ErrUnknownVersion", ld.name, err)
				}
				if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
					t.Errorf("%s leaked a raw EOF: %v", ld.name, err)
				}
			}
		})
	}
}

// TestDurableSyncPolicies smoke-tests every WAL sync policy through the
// public surface: mutations are durable (or at least replayable after a
// clean close) under each.
func TestDurableSyncPolicies(t *testing.T) {
	for _, pol := range []setsim.SyncPolicy{setsim.SyncAlways, setsim.SyncGroup, setsim.SyncOff} {
		t.Run(pol.String(), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "store.sssnap")
			le, _, err := setsim.OpenDurable(path, killPointConfig(1), setsim.DurableOptions{Sync: pol})
			if err != nil {
				t.Fatal(err)
			}
			applyOps(t, le, killPhaseA)
			le.Close()
			re, info, err := setsim.OpenDurable(path, killPointConfig(1), setsim.DurableOptions{Sync: pol})
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if info.WALTail != len(walRecs(killPhaseA)) || re.NumDocs() != 8 || re.NumLive() != 6 {
				t.Fatalf("reopen under %v: info %+v, %d docs %d live", pol, info, re.NumDocs(), re.NumLive())
			}
		})
	}
	if _, err := setsim.ParseSyncPolicy("bogus"); err == nil {
		t.Error("ParseSyncPolicy accepted bogus")
	}
}
