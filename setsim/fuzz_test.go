package setsim_test

import (
	"path/filepath"
	"testing"

	"repro/setsim"
)

// FuzzPersistRoundTrip builds a small corpus from arbitrary strings,
// saves it, loads it back, and demands the rebuilt engine is observably
// identical: same corpus shape, same retained sources, and bitwise-equal
// answers to a selection query. Save/Load must also never panic on any
// input, including empty and non-UTF-8 strings.
func FuzzPersistRoundTrip(f *testing.F) {
	f.Add("main street", "mian street", "main st", "main stret")
	f.Add("", "a", "b", "ab")
	f.Add("αβγδ", "αβγε", "xyz", "αβγ")
	f.Add("\x00\xff", "\xfe\xfd", "ok", "\x00")
	f.Add("repeat repeat repeat", "repeat", "unique tokens here", "repeat tokens")
	f.Fuzz(func(t *testing.T, a, b, c, query string) {
		corpus := []string{a, b, c}
		orig := setsim.Build(corpus, setsim.QGramTokenizer{Q: 2, Pad: true}, setsim.ListsOnly())

		path := filepath.Join(t.TempDir(), "corpus.sscol")
		if err := setsim.Save(path, orig); err != nil {
			t.Fatalf("save: %v", err)
		}
		loaded, err := setsim.Load(path, setsim.ListsOnly())
		if err != nil {
			t.Fatalf("load: %v", err)
		}

		oc, lc := orig.Collection(), loaded.Collection()
		if oc.NumSets() != lc.NumSets() {
			t.Fatalf("NumSets: %d after round trip, want %d", lc.NumSets(), oc.NumSets())
		}
		for id := 0; id < oc.NumSets(); id++ {
			sid := setsim.SetID(id)
			if oc.Source(sid) != lc.Source(sid) {
				t.Fatalf("source %d: %q after round trip, want %q", id, lc.Source(sid), oc.Source(sid))
			}
		}

		// The rebuilt indexes must answer queries identically; errors
		// (e.g. ErrEmptyQuery for token-free input) must agree too.
		r1, _, err1 := orig.Select(orig.Prepare(query), 0.5, setsim.SF, nil)
		r2, _, err2 := loaded.Select(loaded.Prepare(query), 0.5, setsim.SF, nil)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("query errors diverge after round trip: %v vs %v", err1, err2)
		}
		if len(r1) != len(r2) {
			t.Fatalf("%d results after round trip, want %d", len(r2), len(r1))
		}
		for i := range r1 {
			if r1[i].ID != r2[i].ID || r1[i].Score != r2[i].Score {
				t.Fatalf("result %d diverges after round trip: {%d %.17g} vs {%d %.17g}",
					i, r2[i].ID, r2[i].Score, r1[i].ID, r1[i].Score)
			}
		}
	})
}
