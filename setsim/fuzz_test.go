package setsim_test

import (
	"path/filepath"
	"testing"

	"repro/setsim"
)

// FuzzPersistRoundTrip builds a small corpus from arbitrary strings,
// saves it, loads it back, and demands the rebuilt engine is observably
// identical: same corpus shape, same retained sources, and bitwise-equal
// answers to a selection query. Save/Load must also never panic on any
// input, including empty and non-UTF-8 strings.
func FuzzPersistRoundTrip(f *testing.F) {
	f.Add("main street", "mian street", "main st", "main stret")
	f.Add("", "a", "b", "ab")
	f.Add("αβγδ", "αβγε", "xyz", "αβγ")
	f.Add("\x00\xff", "\xfe\xfd", "ok", "\x00")
	f.Add("repeat repeat repeat", "repeat", "unique tokens here", "repeat tokens")
	f.Fuzz(func(t *testing.T, a, b, c, query string) {
		corpus := []string{a, b, c}
		orig := setsim.Build(corpus, setsim.QGramTokenizer{Q: 2, Pad: true}, setsim.ListsOnly())

		path := filepath.Join(t.TempDir(), "corpus.sscol")
		if err := setsim.Save(path, orig); err != nil {
			t.Fatalf("save: %v", err)
		}
		loaded, err := setsim.Load(path, setsim.ListsOnly())
		if err != nil {
			t.Fatalf("load: %v", err)
		}

		oc, lc := orig.Collection(), loaded.Collection()
		if oc.NumSets() != lc.NumSets() {
			t.Fatalf("NumSets: %d after round trip, want %d", lc.NumSets(), oc.NumSets())
		}
		for id := 0; id < oc.NumSets(); id++ {
			sid := setsim.SetID(id)
			if oc.Source(sid) != lc.Source(sid) {
				t.Fatalf("source %d: %q after round trip, want %q", id, lc.Source(sid), oc.Source(sid))
			}
		}

		// The rebuilt indexes must answer queries identically; errors
		// (e.g. ErrEmptyQuery for token-free input) must agree too.
		r1, _, err1 := orig.Select(orig.Prepare(query), 0.5, setsim.SF, nil)
		r2, _, err2 := loaded.Select(loaded.Prepare(query), 0.5, setsim.SF, nil)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("query errors diverge after round trip: %v vs %v", err1, err2)
		}
		if len(r1) != len(r2) {
			t.Fatalf("%d results after round trip, want %d", len(r2), len(r1))
		}
		for i := range r1 {
			if r1[i].ID != r2[i].ID || r1[i].Score != r2[i].Score {
				t.Fatalf("result %d diverges after round trip: {%d %.17g} vs {%d %.17g}",
					i, r2[i].ID, r2[i].Score, r1[i].ID, r1[i].Score)
			}
		}

		// Live-snapshot round trip (version 5 manifest + segpacks): the
		// same corpus through a live engine and the snapshot format, with
		// one deletion so tombstones are persisted. The reloaded engine
		// must preserve ids and hide the deleted document.
		live := setsim.NewLive(setsim.QGramTokenizer{Q: 2, Pad: true}, setsim.LiveConfig{
			Config: setsim.ListsOnly(), NoBackground: true,
		})
		defer live.Close()
		var ids []setsim.SetID
		for _, s := range corpus {
			if id, err := live.Insert(s); err == nil {
				ids = append(ids, id)
			}
		}
		if len(ids) > 1 {
			live.Delete(ids[0])
		}
		lpath := filepath.Join(t.TempDir(), "corpus.sssnap")
		if err := setsim.SaveLive(lpath, live); err != nil {
			t.Fatalf("save live: %v", err)
		}
		reloaded, info, err := setsim.OpenLive(lpath, setsim.LiveConfig{
			Config: setsim.ListsOnly(), NoBackground: true,
		})
		if err != nil {
			t.Fatalf("open live: %v", err)
		}
		defer reloaded.Close()
		if info.Version != 5 || info.Docs != live.NumDocs() || info.Live != live.NumLive() {
			t.Fatalf("snapshot info %+v, want version 5, %d docs, %d live",
				info, live.NumDocs(), live.NumLive())
		}
		for _, id := range ids {
			s1, ok1 := live.Source(id)
			s2, ok2 := reloaded.Source(id)
			if ok1 != ok2 || s1 != s2 {
				t.Fatalf("doc %d diverges after live round trip: (%q,%v) vs (%q,%v)",
					id, s2, ok2, s1, ok1)
			}
		}
		l1, _, err1 := live.Select(live.Prepare(query), 0.5, setsim.SF, nil)
		l2, _, err2 := reloaded.Select(reloaded.Prepare(query), 0.5, setsim.SF, nil)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("live query errors diverge after round trip: %v vs %v", err1, err2)
		}
		if len(l1) != len(l2) {
			t.Fatalf("%d live results after round trip, want %d", len(l2), len(l1))
		}
		for i := range l1 {
			if l1[i].ID != l2[i].ID || l1[i].Score != l2[i].Score {
				t.Fatalf("live result %d diverges after round trip: {%d %.17g} vs {%d %.17g}",
					i, l2[i].ID, l2[i].Score, l1[i].ID, l1[i].Score)
			}
		}

		// A legacy file must load as a live engine too (ids re-derived by
		// replay), and Open must accept both versions as a static engine.
		if fromLegacy, info, err := setsim.OpenLive(path, setsim.LiveConfig{
			Config: setsim.ListsOnly(), NoBackground: true,
		}); err != nil {
			t.Fatalf("open live from legacy: %v", err)
		} else {
			if info.Version != 1 {
				t.Fatalf("legacy snapshot info %+v, want version 1", info)
			}
			fromLegacy.Close()
		}
		if _, info, err := setsim.Open(lpath, setsim.ListsOnly()); err != nil || info.Version != 5 {
			t.Fatalf("static open of v5 snapshot: info %+v err %v", info, err)
		}

		// Durable round trip: the same script journaled into a WAL with
		// no checkpoint, recovered by replaying the log, then upgraded to
		// a checkpointed v5 store. The reference engine applies the same
		// mutations through the ordinary in-memory path (OpenDurable's
		// fresh-store tokenizer, not the q=2 one above).
		dcfg := setsim.LiveConfig{Config: setsim.ListsOnly(), NoBackground: true, CheckpointEvery: -1}
		dpath := filepath.Join(t.TempDir(), "corpus.sssnap")
		de, _, err := setsim.OpenDurable(dpath, dcfg, setsim.DurableOptions{Sync: setsim.SyncOff})
		if err != nil {
			t.Fatalf("open durable: %v", err)
		}
		ref := setsim.NewLive(setsim.QGramTokenizer{Q: 3}, dcfg)
		defer ref.Close()
		records := 0
		var did []setsim.SetID
		for _, s := range corpus {
			idD, errD := de.Insert(s)
			idR, errR := ref.Insert(s)
			if (errD == nil) != (errR == nil) || idD != idR {
				t.Fatalf("durable insert %q: (%d,%v) vs reference (%d,%v)", s, idD, errD, idR, errR)
			}
			if errD == nil {
				did = append(did, idD)
				records++
			}
		}
		if len(did) > 1 {
			if !de.Delete(did[0]) || !ref.Delete(did[0]) {
				t.Fatalf("durable delete %d did not apply", did[0])
			}
			records++
		}
		de.Close()

		re, dinfo, err := setsim.OpenDurable(dpath, dcfg, setsim.DurableOptions{Sync: setsim.SyncOff})
		if err != nil {
			t.Fatalf("durable recovery: %v", err)
		}
		if dinfo.WALTail != records || re.NumDocs() != ref.NumDocs() || re.NumLive() != ref.NumLive() {
			t.Fatalf("durable recovery: info %+v, %d docs %d live; want %d records, %d docs, %d live",
				dinfo, re.NumDocs(), re.NumLive(), records, ref.NumDocs(), ref.NumLive())
		}
		d1, _, derr1 := ref.Select(ref.Prepare(query), 0.5, setsim.SF, nil)
		d2, _, derr2 := re.Select(re.Prepare(query), 0.5, setsim.SF, nil)
		if (derr1 == nil) != (derr2 == nil) || len(d1) != len(d2) {
			t.Fatalf("durable recovery queries diverge: (%d,%v) vs (%d,%v)", len(d2), derr2, len(d1), derr1)
		}
		for i := range d1 {
			if d1[i].ID != d2[i].ID || d1[i].Score != d2[i].Score {
				t.Fatalf("durable result %d diverges: {%d %.17g} vs {%d %.17g}",
					i, d2[i].ID, d2[i].Score, d1[i].ID, d1[i].Score)
			}
		}
		// Checkpoint upgrades the store to a manifest + packages with an
		// empty WAL tail; the static loader must agree on what survived.
		if records > 0 {
			if err := re.CheckpointNow(); err != nil {
				re.Close()
				t.Fatalf("checkpoint: %v", err)
			}
			re.Close()
			if _, cinfo, err := setsim.Open(dpath, setsim.ListsOnly()); err != nil ||
				cinfo.Version != 5 || cinfo.WALTail != 0 || cinfo.Live != ref.NumLive() {
				t.Fatalf("post-checkpoint open: info %+v err %v, want v5 with empty tail and %d live",
					cinfo, err, ref.NumLive())
			}
		} else {
			re.Close()
		}
	})
}
