package setsim_test

import (
	"fmt"

	"repro/setsim"
)

// ExampleBuild shows the minimal end-to-end flow: build an index over a
// string corpus and run one selection query.
func ExampleBuild() {
	corpus := []string{"Main Street", "Maine Street", "Florham Park"}
	idx := setsim.Build(corpus, setsim.QGramTokenizer{Q: 3}, setsim.ListsOnly())

	q := idx.Prepare("Maine Str.")
	results, _, err := idx.Select(q, 0.7, setsim.SF, nil)
	if err != nil {
		panic(err)
	}
	for _, r := range results {
		fmt.Printf("%.2f %s\n", r.Score, idx.Collection().Source(r.ID))
	}
	// Output:
	// 0.74 Maine Street
}

// ExampleEngine_SelectTopK asks for the two most similar corpus strings
// instead of a threshold.
func ExampleEngine_SelectTopK() {
	corpus := []string{"main street", "maine street", "wall street", "florham park"}
	idx := setsim.Build(corpus, setsim.QGramTokenizer{Q: 3}, setsim.ListsOnly())

	res, _, err := idx.SelectTopK(idx.Prepare("main street"), 2, setsim.SF, nil)
	if err != nil {
		panic(err)
	}
	for i, r := range res {
		fmt.Printf("%d. %s\n", i+1, idx.Collection().Source(r.ID))
	}
	// Output:
	// 1. main street
	// 2. maine street
}

// ExampleEngine_Select_statistics shows the access statistics every query
// reports — the quantities the paper's evaluation plots.
func ExampleEngine_Select_statistics() {
	corpus := []string{"alpha beta", "beta gamma", "gamma delta", "delta epsilon"}
	idx := setsim.Build(corpus, setsim.WordTokenizer{}, setsim.ListsOnly())

	_, stats, err := idx.Select(idx.Prepare("beta gamma"), 0.9, setsim.SF, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("read %d of %d postings\n", stats.ElementsRead, stats.ListTotal)
	// Output:
	// read 3 of 4 postings
}
