package setsim

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/invlist"
	"repro/internal/tokenize"
)

// Snapshot file formats. Three versions coexist:
//
// Version 1 (legacy) is the collection binary format (magic "SSCOL1"),
// written by Save: one frozen corpus, no mutation history. Versions 2
// and 3 are live-snapshot formats:
//
//	magic "SSSNAP\n\x00", version byte (2 or 3)
//	payload CRC32 (of everything after this field)
//	tokenizer name: uvarint len + bytes
//	shards u32 (version 3 only; version 2 is implicitly 1)
//	numDocs u32
//	per doc: flag u8 (bit0 = tombstoned), uvarint len + source bytes
//
// SaveLive writes version 3 — the sharded layout, which records how
// many hash partitions the engine ran with so OpenLive can restore the
// same fan-out; versions 1 and 2 remain fully readable. The document
// log is stored in id order including tombstoned entries, so a
// save/load cycle preserves every id a caller may still hold. Index
// structures and statistics are derived state, rebuilt on load. Files
// with the snapshot magic but an unknown version byte are rejected with
// ErrUnknownVersion: future formats must not be misparsed.
const (
	snapMagic = "SSSNAP\n\x00"
	snapV2    = 2
	snapV3    = 3
)

// ErrUnknownVersion reports a snapshot file with a format version this
// build does not understand.
var ErrUnknownVersion = errors.New("setsim: unknown snapshot format version")

// SnapshotInfo describes a loaded snapshot file.
type SnapshotInfo struct {
	// Version is the file's format version: 1 for legacy collection
	// files, 2 and 3 for live snapshots (3 adds the shard count).
	Version int
	// Docs is the number of documents stored, including tombstoned ones.
	Docs int
	// Live is the number of live (non-tombstoned) documents.
	Live int
	// Shards is the hash-partition count the engine was saved with
	// (1 for version-1 and version-2 files).
	Shards int
}

// Save writes the engine's collection (dictionary, sets, sources) to
// path in the legacy version-1 format. Derived index structures are not
// stored: Load rebuilds them deterministically, which is fast relative
// to I/O and keeps the file compact.
func Save(path string, e *Engine) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return collection.Write(f, e.Collection())
}

// SaveLive writes a mutable engine's snapshot to path in the version-3
// format: the full document log with tombstone flags, plus the shard
// count the engine ran with. The engine is fully compacted first so the
// snapshot captures one settled generation.
func SaveLive(path string, le *LiveEngine) (err error) {
	le.Compact()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return writeSnapshot(f, le.Tokenizer().Name(), le.NumShards(), le.Log())
}

func writeSnapshot(w io.Writer, tkName string, shards int, log []core.DocState) error {
	var payload []byte
	putUvarint := func(v uint64) {
		var buf [10]byte
		n := binary.PutUvarint(buf[:], v)
		payload = append(payload, buf[:n]...)
	}
	putString := func(s string) {
		putUvarint(uint64(len(s)))
		payload = append(payload, s...)
	}

	putString(tkName)
	var numBuf [4]byte
	binary.LittleEndian.PutUint32(numBuf[:], uint32(shards))
	payload = append(payload, numBuf[:]...)
	binary.LittleEndian.PutUint32(numBuf[:], uint32(len(log)))
	payload = append(payload, numBuf[:]...)
	for _, d := range log {
		var flag byte
		if d.Deleted {
			flag = 1
		}
		payload = append(payload, flag)
		putString(d.Source)
	}

	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(snapMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(snapV3); err != nil {
		return err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(payload))
	if _, err := bw.Write(crcBuf[:]); err != nil {
		return err
	}
	if _, err := bw.Write(payload); err != nil {
		return err
	}
	return bw.Flush()
}

func readSnapshot(r io.Reader) (tk Tokenizer, shards int, log []core.DocState, err error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head := make([]byte, len(snapMagic)+1+4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, 0, nil, fmt.Errorf("%w: short header: %v", collection.ErrBadCollection, err)
	}
	if string(head[:len(snapMagic)]) != snapMagic {
		return nil, 0, nil, fmt.Errorf("%w: bad magic", collection.ErrBadCollection)
	}
	version := head[len(snapMagic)]
	if version != snapV2 && version != snapV3 {
		return nil, 0, nil, fmt.Errorf("%w: %d", ErrUnknownVersion, version)
	}
	wantCRC := binary.LittleEndian.Uint32(head[len(snapMagic)+1:])
	payload, err := io.ReadAll(br)
	if err != nil {
		return nil, 0, nil, err
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, 0, nil, fmt.Errorf("%w: checksum mismatch", collection.ErrBadCollection)
	}

	pos := 0
	getString := func() (string, bool) {
		n, sz := binary.Uvarint(payload[pos:])
		if sz <= 0 || pos+sz+int(n) > len(payload) {
			return "", false
		}
		s := string(payload[pos+sz : pos+sz+int(n)])
		pos += sz + int(n)
		return s, true
	}

	tkName, ok := getString()
	if !ok {
		return nil, 0, nil, fmt.Errorf("%w: truncated tokenizer name", collection.ErrBadCollection)
	}
	tk, err = tokenize.ParseName(tkName)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("%w: %v", collection.ErrBadCollection, err)
	}
	shards = 1
	if version >= snapV3 {
		if pos+4 > len(payload) {
			return nil, 0, nil, fmt.Errorf("%w: truncated shard count", collection.ErrBadCollection)
		}
		shards = int(binary.LittleEndian.Uint32(payload[pos:]))
		pos += 4
		if shards < 1 {
			return nil, 0, nil, fmt.Errorf("%w: shard count %d", collection.ErrBadCollection, shards)
		}
	}
	if pos+4 > len(payload) {
		return nil, 0, nil, fmt.Errorf("%w: truncated doc count", collection.ErrBadCollection)
	}
	numDocs := binary.LittleEndian.Uint32(payload[pos:])
	pos += 4
	log = make([]core.DocState, numDocs)
	for i := range log {
		if pos >= len(payload) {
			return nil, 0, nil, fmt.Errorf("%w: truncated doc flag", collection.ErrBadCollection)
		}
		flag := payload[pos]
		pos++
		src, ok := getString()
		if !ok {
			return nil, 0, nil, fmt.Errorf("%w: truncated doc source", collection.ErrBadCollection)
		}
		log[i] = core.DocState{Source: src, Deleted: flag&1 != 0}
	}
	if pos != len(payload) {
		return nil, 0, nil, fmt.Errorf("%w: %d trailing bytes", collection.ErrBadCollection, len(payload)-pos)
	}
	return tk, shards, log, nil
}

// sniffVersion reads the leading magic of the file at path: 1 for the
// legacy collection format, 2 or 3 for live snapshots. Unknown snapshot
// versions yield ErrUnknownVersion; anything else is rejected as a bad
// collection.
func sniffVersion(f *os.File) (int, error) {
	head := make([]byte, len(snapMagic)+1)
	n, err := io.ReadFull(f, head)
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) {
		return 0, fmt.Errorf("%w: short header: %v", collection.ErrBadCollection, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	head = head[:n]
	if len(head) >= 8 && string(head[:8]) == "SSCOL1\n\x00" {
		return 1, nil
	}
	if len(head) >= len(snapMagic) && string(head[:len(snapMagic)]) == snapMagic {
		if len(head) <= len(snapMagic) {
			return snapV2, nil // truncated after magic; the body read reports it
		}
		switch v := head[len(snapMagic)]; v {
		case snapV2, snapV3:
			return int(v), nil
		default:
			return 0, fmt.Errorf("%w: %d", ErrUnknownVersion, v)
		}
	}
	return 0, fmt.Errorf("%w: bad magic", collection.ErrBadCollection)
}

// Open loads any snapshot version as a static Engine and reports what
// was read. Live snapshots index the live documents only; their ids are
// re-assigned densely in id order (a static engine has no tombstones),
// so callers that must preserve live ids should use OpenLive instead.
// The saved shard count is reported in the info but not applied — a
// static engine is monolithic; use OpenSharded to restore the fan-out.
func Open(path string, cfg Config) (*Engine, SnapshotInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, SnapshotInfo{}, err
	}
	defer f.Close()
	version, err := sniffVersion(f)
	if err != nil {
		return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: %w", path, err)
	}
	if version == 1 {
		c, err := collection.Read(f)
		if err != nil {
			return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: %w", path, err)
		}
		info := SnapshotInfo{Version: 1, Docs: c.NumSets(), Live: c.NumSets(), Shards: 1}
		return core.NewEngine(c, cfg), info, nil
	}
	tk, shards, log, err := readSnapshot(f)
	if err != nil {
		return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: %w", path, err)
	}
	b := collection.NewBuilder(tk, true)
	live := 0
	for _, d := range log {
		if !d.Deleted && b.Add(d.Source) {
			live++
		}
	}
	info := SnapshotInfo{Version: version, Docs: len(log), Live: live, Shards: shards}
	return core.NewEngine(b.Build(), cfg), info, nil
}

// OpenSharded loads any snapshot version as a sharded static engine.
// shards ≤ 0 restores the shard count the snapshot was saved with (1
// for version-1 and version-2 files); a positive value overrides it.
// Live documents are re-indexed densely in id order, exactly as Open
// does, then hash-partitioned.
func OpenSharded(path string, cfg Config, shards int) (*ShardedEngine, SnapshotInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, SnapshotInfo{}, err
	}
	defer f.Close()
	version, err := sniffVersion(f)
	if err != nil {
		return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: %w", path, err)
	}
	var tk Tokenizer
	var docs []string
	var info SnapshotInfo
	if version == 1 {
		c, err := collection.Read(f)
		if err != nil {
			return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: %w", path, err)
		}
		if !c.HasSource() {
			return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: legacy snapshot lacks sources; cannot repartition", path)
		}
		tk = c.Tokenizer()
		docs = make([]string, c.NumSets())
		for i := range docs {
			docs[i] = c.Source(collection.SetID(i))
		}
		info = SnapshotInfo{Version: 1, Docs: len(docs), Live: len(docs), Shards: 1}
	} else {
		var saved int
		var log []core.DocState
		tk, saved, log, err = readSnapshot(f)
		if err != nil {
			return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: %w", path, err)
		}
		for _, d := range log {
			if !d.Deleted {
				docs = append(docs, d.Source)
			}
		}
		info = SnapshotInfo{Version: version, Docs: len(log), Live: len(docs), Shards: saved}
	}
	if shards <= 0 {
		shards = info.Shards
	}
	return core.BuildSharded(tk, docs, true, shards, cfg), info, nil
}

// OpenLive loads any snapshot version as a mutable engine and reports
// what was read. The document log is replayed — tombstoned entries
// included, preserving ids — and compacted before OpenLive returns.
// When cfg.Shards is unset, a version-3 snapshot restores the shard
// count it was saved with; setting cfg.Shards overrides it.
func OpenLive(path string, cfg LiveConfig) (*LiveEngine, SnapshotInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, SnapshotInfo{}, err
	}
	defer f.Close()
	version, err := sniffVersion(f)
	if err != nil {
		return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: %w", path, err)
	}
	var tk Tokenizer
	var log []core.DocState
	var info SnapshotInfo
	switch version {
	case 1:
		c, err := collection.Read(f)
		if err != nil {
			return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: %w", path, err)
		}
		if !c.HasSource() {
			return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: legacy snapshot lacks sources; cannot replay into a live engine", path)
		}
		tk = c.Tokenizer()
		log = make([]core.DocState, c.NumSets())
		for i := range log {
			log[i] = core.DocState{Source: c.Source(collection.SetID(i))}
		}
		info = SnapshotInfo{Version: 1, Docs: len(log), Live: len(log), Shards: 1}
	default:
		var saved int
		tk, saved, log, err = readSnapshot(f)
		if err != nil {
			return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: %w", path, err)
		}
		live := 0
		for _, d := range log {
			if !d.Deleted {
				live++
			}
		}
		info = SnapshotInfo{Version: version, Docs: len(log), Live: live, Shards: saved}
	}
	if cfg.Shards <= 0 {
		cfg.Shards = info.Shards
	}
	le := core.NewLive(tk, cfg)
	for _, d := range log {
		id, err := le.Insert(d.Source)
		if err != nil {
			le.Close()
			return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: replay: %w", path, err)
		}
		if d.Deleted {
			le.Delete(id)
		}
	}
	le.Compact()
	return le, info, nil
}

// Load reads a snapshot written by Save (or SaveLive) and rebuilds the
// indexes per cfg. The file's checksum is verified; a corrupt file
// yields an error wrapping collection.ErrBadCollection, and a snapshot
// from a newer format version one wrapping ErrUnknownVersion.
func Load(path string, cfg Config) (*Engine, error) {
	e, _, err := Open(path, cfg)
	return e, err
}

// SaveLists additionally writes the disk-resident inverted-list file
// (the invlist binary format) so that queries can run against on-disk
// lists via LoadWithLists instead of rebuilding an in-memory store.
func SaveLists(path string, e *Engine) error {
	return invlist.WriteFile(path, e.Collection(), 0)
}

// LoadWithLists opens a collection saved with Save plus a list file
// written by SaveLists, and serves queries from the on-disk lists.
func LoadWithLists(collectionPath, listsPath string, cfg Config) (*Engine, error) {
	f, err := os.Open(collectionPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := collection.Read(f)
	if err != nil {
		return nil, fmt.Errorf("setsim: load %s: %w", collectionPath, err)
	}
	store, err := invlist.OpenFile(listsPath)
	if err != nil {
		return nil, fmt.Errorf("setsim: open lists %s: %w", listsPath, err)
	}
	cfg.Store = store
	return core.NewEngine(c, cfg), nil
}
