package setsim

import (
	"fmt"
	"os"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/invlist"
)

// Save writes the engine's collection (dictionary, sets, sources) to
// path in the library's binary format. Derived index structures are not
// stored: Load rebuilds them deterministically, which is fast relative
// to I/O and keeps the file compact.
func Save(path string, e *Engine) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return collection.Write(f, e.Collection())
}

// Load reads a collection written by Save and rebuilds the indexes per
// cfg. The file's checksum is verified; a corrupt file yields an error
// wrapping collection.ErrBadCollection.
func Load(path string, cfg Config) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := collection.Read(f)
	if err != nil {
		return nil, fmt.Errorf("setsim: load %s: %w", path, err)
	}
	return core.NewEngine(c, cfg), nil
}

// SaveLists additionally writes the disk-resident inverted-list file
// (the invlist binary format) so that queries can run against on-disk
// lists via LoadWithLists instead of rebuilding an in-memory store.
func SaveLists(path string, e *Engine) error {
	return invlist.WriteFile(path, e.Collection(), 0)
}

// LoadWithLists opens a collection saved with Save plus a list file
// written by SaveLists, and serves queries from the on-disk lists.
func LoadWithLists(collectionPath, listsPath string, cfg Config) (*Engine, error) {
	f, err := os.Open(collectionPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := collection.Read(f)
	if err != nil {
		return nil, fmt.Errorf("setsim: load %s: %w", collectionPath, err)
	}
	store, err := invlist.OpenFile(listsPath)
	if err != nil {
		return nil, fmt.Errorf("setsim: open lists %s: %w", listsPath, err)
	}
	cfg.Store = store
	return core.NewEngine(c, cfg), nil
}
