package setsim

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/collection"
	"repro/internal/core"
	"repro/internal/invlist"
	"repro/internal/tokenize"
)

// Snapshot file formats. Four versions coexist:
//
// Version 1 (legacy) is the collection binary format (magic "SSCOL1"),
// written by Save: one frozen corpus, no mutation history. Versions 2–4
// are live-snapshot formats:
//
//	magic "SSSNAP\n\x00", version byte (2, 3 or 4)
//	payload CRC32 (of everything after this field)
//	tokenizer name: uvarint len + bytes
//	shards u32 (version ≥ 3; version 2 is implicitly 1)
//	numDocs u32
//	per doc: flag u8 (bit0 = tombstoned), uvarint len + source bytes
//	version ≥ 4 only:
//	  per doc: uvarint shard (the routing table, tombstoned docs included)
//	  per shard: docs u32, lenMin f64, lenMax f64 (IEEE bits, LE),
//	             hot-token count u32, sketch slots u32, occupied u32
//
// Version 5 is the durable-store layout (store.go): the file at path is
// a thin manifest — same magic and CRC framing, version byte 5 —
// listing checksummed segment packages (one per shard, holding the live
// documents) plus the dead log, per-shard summary scalars and the WAL
// horizon; the documents themselves live in the packages and the
// mutations since the last checkpoint in a write-ahead log next to the
// manifest.
//
// SaveLive writes version 5; versions 1–4 remain fully readable. The
// package shard membership doubles as the routing table, letting
// OpenSharded reproduce the saved partition exactly without
// re-clustering; the summary scalars are advisory (inspection via
// SnapshotInfo — full summaries are derived state, rebuilt from the
// documents on load, like every other index structure). The document
// log is stored in id order including tombstoned entries, so a
// save/load cycle preserves every id a caller may still hold. Files
// with the snapshot magic but an unknown version byte are rejected with
// ErrUnknownVersion: future formats must not be misparsed.
const (
	snapMagic = "SSSNAP\n\x00"
	snapV2    = 2
	snapV3    = 3
	snapV4    = 4
	snapV5    = 5
)

// ErrUnknownVersion reports a snapshot file with a format version this
// build does not understand.
var ErrUnknownVersion = errors.New("setsim: unknown snapshot format version")

// ShardSummaryInfo is one shard's persisted pruning-summary scalars, as
// carried by version-4 snapshots.
type ShardSummaryInfo struct {
	// Docs is the number of documents the shard's summary covers.
	Docs int
	// LenMin and LenMax bound the shard's normalized set lengths.
	LenMin, LenMax float64
	// HotTokens is how many corpus-hot tokens occur in the shard.
	HotTokens int
	// SketchSlots and SketchOccupied describe the shard's hashed
	// token-universe sketch.
	SketchSlots, SketchOccupied int
}

// SnapshotInfo describes a loaded snapshot file.
type SnapshotInfo struct {
	// Version is the file's format version: 1 for legacy collection
	// files, 2–4 for live snapshots (3 adds the shard count, 4 the
	// routing table and per-shard summaries).
	Version int
	// Docs is the number of documents stored, including tombstoned ones.
	Docs int
	// Live is the number of live (non-tombstoned) documents.
	Live int
	// Shards is the partition count the engine was saved with (1 for
	// version-1 and version-2 files).
	Shards int
	// Routed reports a version-4 or newer snapshot carrying a routing
	// table (explicit in v4, package membership in v5) and per-shard
	// summaries; RouteCounts and Summaries are only meaningful then.
	Routed bool
	// RouteCounts is the number of live documents routed to each shard.
	RouteCounts []int
	// Summaries holds each shard's persisted summary scalars.
	Summaries []ShardSummaryInfo

	// The fields below describe version-5 durable stores only.

	// Generation is the manifest's checkpoint generation.
	Generation uint64
	// WALStart is the last WAL sequence number the manifest covers;
	// recovery replayed the records after it.
	WALStart uint64
	// WALTail is the number of intact WAL records replayed past the
	// checkpoint; WALTorn reports a torn (truncated mid-record) tail
	// after them — the sign of a crash mid-append.
	WALTail int
	WALTorn bool
	// Segpacks lists the segment packages the manifest references.
	Segpacks []SegpackRef
}

// Save writes the engine's collection (dictionary, sets, sources) to
// path in the legacy version-1 format. Derived index structures are not
// stored: Load rebuilds them deterministically, which is fast relative
// to I/O and keeps the file compact.
func Save(path string, e *Engine) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	return collection.Write(f, e.Collection())
}

// SaveLive writes a mutable engine's snapshot to path in the version-5
// durable-store format: one checksummed segment package per non-empty
// shard holding its live documents, plus the thin manifest (dead log,
// summary scalars, package references). The engine is fully compacted
// first so the snapshot captures one settled generation — in
// particular, the package shard membership is the similarity-aware
// assignment the compaction computed, not the hash fallback fresh
// inserts start under.
func SaveLive(path string, le *LiveEngine) error {
	le.Compact()
	return saveLiveV5(path, le)
}

// writeSnapshot serializes a live snapshot. A nil routing table writes
// the version-3 layout (kept for compatibility tests); otherwise routing
// must hold one shard per log entry and sums one row per shard, and the
// version-4 tail is appended.
func writeSnapshot(w io.Writer, tkName string, shards int, log []core.DocState, routing []int32, sums []ShardSummaryInfo) error {
	var payload []byte
	putUvarint := func(v uint64) {
		var buf [10]byte
		n := binary.PutUvarint(buf[:], v)
		payload = append(payload, buf[:n]...)
	}
	putString := func(s string) {
		putUvarint(uint64(len(s)))
		payload = append(payload, s...)
	}
	putU32 := func(v uint32) {
		var buf [4]byte
		binary.LittleEndian.PutUint32(buf[:], v)
		payload = append(payload, buf[:]...)
	}
	putF64 := func(v float64) {
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		payload = append(payload, buf[:]...)
	}

	version := byte(snapV3)
	if routing != nil {
		version = snapV4
		if len(routing) != len(log) || len(sums) != shards {
			return fmt.Errorf("setsim: snapshot routing table mismatch: %d routes for %d docs, %d summaries for %d shards",
				len(routing), len(log), len(sums), shards)
		}
	}

	putString(tkName)
	putU32(uint32(shards))
	putU32(uint32(len(log)))
	for _, d := range log {
		var flag byte
		if d.Deleted {
			flag = 1
		}
		payload = append(payload, flag)
		putString(d.Source)
	}
	if version >= snapV4 {
		for _, sh := range routing {
			putUvarint(uint64(sh))
		}
		for _, s := range sums {
			putU32(uint32(s.Docs))
			putF64(s.LenMin)
			putF64(s.LenMax)
			putU32(uint32(s.HotTokens))
			putU32(uint32(s.SketchSlots))
			putU32(uint32(s.SketchOccupied))
		}
	}

	return writeFramedSnapshot(w, version, payload)
}

// writeFramedSnapshot writes the shared snapshot framing — magic,
// version byte, payload CRC32 — followed by the payload. Versions 2–5
// all use it; what differs is the payload layout.
func writeFramedSnapshot(w io.Writer, version byte, payload []byte) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(snapMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(version); err != nil {
		return err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(payload))
	if _, err := bw.Write(crcBuf[:]); err != nil {
		return err
	}
	if _, err := bw.Write(payload); err != nil {
		return err
	}
	return bw.Flush()
}

// readFramedSnapshot validates the shared framing and returns the
// checksum-verified payload. The version byte must equal want (the
// caller sniffed it); unknown versions wrap ErrUnknownVersion, every
// other structural failure wraps collection.ErrBadCollection — a
// truncated file never surfaces a raw io.EOF.
func readFramedSnapshot(r io.Reader, want byte) ([]byte, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head := make([]byte, len(snapMagic)+1+4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", collection.ErrBadCollection, err)
	}
	if string(head[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", collection.ErrBadCollection)
	}
	version := head[len(snapMagic)]
	if version < snapV2 || version > snapV5 {
		return nil, fmt.Errorf("%w: %d", ErrUnknownVersion, version)
	}
	if version != want {
		return nil, fmt.Errorf("%w: version %d where %d expected", collection.ErrBadCollection, version, want)
	}
	wantCRC := binary.LittleEndian.Uint32(head[len(snapMagic)+1:])
	payload, err := io.ReadAll(br)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", collection.ErrBadCollection, err)
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, fmt.Errorf("%w: checksum mismatch", collection.ErrBadCollection)
	}
	return payload, nil
}

// snapExtra is the version-4 tail: the per-log-entry routing table and
// each shard's persisted summary scalars. Nil for older versions.
type snapExtra struct {
	routing []int32
	sums    []ShardSummaryInfo
}

func readSnapshot(r io.Reader) (tk Tokenizer, shards int, log []core.DocState, extra *snapExtra, err error) {
	br := bufio.NewReaderSize(r, 1<<20)
	head := make([]byte, len(snapMagic)+1+4)
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, 0, nil, nil, fmt.Errorf("%w: short header: %v", collection.ErrBadCollection, err)
	}
	if string(head[:len(snapMagic)]) != snapMagic {
		return nil, 0, nil, nil, fmt.Errorf("%w: bad magic", collection.ErrBadCollection)
	}
	version := head[len(snapMagic)]
	if version != snapV2 && version != snapV3 && version != snapV4 {
		return nil, 0, nil, nil, fmt.Errorf("%w: %d", ErrUnknownVersion, version)
	}
	wantCRC := binary.LittleEndian.Uint32(head[len(snapMagic)+1:])
	payload, err := io.ReadAll(br)
	if err != nil {
		return nil, 0, nil, nil, err
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, 0, nil, nil, fmt.Errorf("%w: checksum mismatch", collection.ErrBadCollection)
	}

	pos := 0
	fail := func(msg string) (Tokenizer, int, []core.DocState, *snapExtra, error) {
		return nil, 0, nil, nil, fmt.Errorf("%w: %s", collection.ErrBadCollection, msg)
	}
	getString := func() (string, bool) {
		n, sz := binary.Uvarint(payload[pos:])
		if sz <= 0 || pos+sz+int(n) > len(payload) {
			return "", false
		}
		s := string(payload[pos+sz : pos+sz+int(n)])
		pos += sz + int(n)
		return s, true
	}
	getU32 := func() (uint32, bool) {
		if pos+4 > len(payload) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(payload[pos:])
		pos += 4
		return v, true
	}
	getF64 := func() (float64, bool) {
		if pos+8 > len(payload) {
			return 0, false
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(payload[pos:]))
		pos += 8
		return v, true
	}

	tkName, ok := getString()
	if !ok {
		return fail("truncated tokenizer name")
	}
	tk, err = tokenize.ParseName(tkName)
	if err != nil {
		return fail(err.Error())
	}
	shards = 1
	if version >= snapV3 {
		v, ok := getU32()
		if !ok {
			return fail("truncated shard count")
		}
		shards = int(v)
		if shards < 1 {
			return fail(fmt.Sprintf("shard count %d", shards))
		}
	}
	numDocs, ok := getU32()
	if !ok {
		return fail("truncated doc count")
	}
	log = make([]core.DocState, numDocs)
	for i := range log {
		if pos >= len(payload) {
			return fail("truncated doc flag")
		}
		flag := payload[pos]
		pos++
		src, ok := getString()
		if !ok {
			return fail("truncated doc source")
		}
		log[i] = core.DocState{Source: src, Deleted: flag&1 != 0}
	}
	if version >= snapV4 {
		extra = &snapExtra{
			routing: make([]int32, numDocs),
			sums:    make([]ShardSummaryInfo, shards),
		}
		for i := range extra.routing {
			sh, sz := binary.Uvarint(payload[pos:])
			if sz <= 0 {
				return fail("truncated routing table")
			}
			pos += sz
			if sh >= uint64(shards) {
				return fail(fmt.Sprintf("route %d out of range for %d shards", sh, shards))
			}
			extra.routing[i] = int32(sh)
		}
		for i := range extra.sums {
			s := &extra.sums[i]
			var oks [6]bool
			var docs, hot, slots, occ uint32
			docs, oks[0] = getU32()
			s.LenMin, oks[1] = getF64()
			s.LenMax, oks[2] = getF64()
			hot, oks[3] = getU32()
			slots, oks[4] = getU32()
			occ, oks[5] = getU32()
			for _, ok := range oks {
				if !ok {
					return fail(fmt.Sprintf("truncated shard summary %d", i))
				}
			}
			s.Docs, s.HotTokens = int(docs), int(hot)
			s.SketchSlots, s.SketchOccupied = int(slots), int(occ)
		}
	}
	if pos != len(payload) {
		return fail(fmt.Sprintf("%d trailing bytes", len(payload)-pos))
	}
	return tk, shards, log, extra, nil
}

// snapInfo assembles the SnapshotInfo for a live snapshot, deriving the
// live count and — for version-4 files — per-shard live routing counts.
func snapInfo(version, shards int, log []core.DocState, extra *snapExtra) SnapshotInfo {
	info := SnapshotInfo{Version: version, Docs: len(log), Shards: shards}
	for _, d := range log {
		if !d.Deleted {
			info.Live++
		}
	}
	if extra != nil {
		info.Routed = true
		info.RouteCounts = make([]int, shards)
		for i, sh := range extra.routing {
			if !log[i].Deleted {
				info.RouteCounts[sh]++
			}
		}
		info.Summaries = extra.sums
	}
	return info
}

// sniffVersion reads the leading magic of the file at path: 1 for the
// legacy collection format, 2–4 for live snapshots, 5 for durable-store
// manifests. Unknown snapshot versions yield ErrUnknownVersion;
// anything else is rejected as a bad collection.
func sniffVersion(f *os.File) (int, error) {
	head := make([]byte, len(snapMagic)+1)
	n, err := io.ReadFull(f, head)
	if err != nil && !errors.Is(err, io.ErrUnexpectedEOF) {
		return 0, fmt.Errorf("%w: short header: %v", collection.ErrBadCollection, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, err
	}
	head = head[:n]
	if len(head) >= 8 && string(head[:8]) == "SSCOL1\n\x00" {
		return 1, nil
	}
	if len(head) >= len(snapMagic) && string(head[:len(snapMagic)]) == snapMagic {
		if len(head) <= len(snapMagic) {
			return snapV2, nil // truncated after magic; the body read reports it
		}
		switch v := head[len(snapMagic)]; v {
		case snapV2, snapV3, snapV4, snapV5:
			return int(v), nil
		default:
			return 0, fmt.Errorf("%w: %d", ErrUnknownVersion, v)
		}
	}
	return 0, fmt.Errorf("%w: bad magic", collection.ErrBadCollection)
}

// Open loads any snapshot version as a static Engine and reports what
// was read. Live snapshots index the live documents only; their ids are
// re-assigned densely in id order (a static engine has no tombstones),
// so callers that must preserve live ids should use OpenLive instead.
// The saved shard count is reported in the info but not applied — a
// static engine is monolithic; use OpenSharded to restore the fan-out.
func Open(path string, cfg Config) (*Engine, SnapshotInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, SnapshotInfo{}, err
	}
	defer f.Close()
	version, err := sniffVersion(f)
	if err != nil {
		return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: %w", path, err)
	}
	if version == 1 {
		c, err := collection.Read(f)
		if err != nil {
			return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: %w", path, err)
		}
		info := SnapshotInfo{Version: 1, Docs: c.NumSets(), Live: c.NumSets(), Shards: 1}
		return core.NewEngine(c, cfg), info, nil
	}
	if version == snapV5 {
		st, err := loadStore(path, f)
		if err != nil {
			return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: %w", path, err)
		}
		log, err := st.foldTail()
		if err != nil {
			return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: %w", path, err)
		}
		b := collection.NewBuilder(st.tk, true)
		live := 0
		for _, d := range log {
			if !d.Deleted {
				b.Add(d.Source)
				live++
			}
		}
		return core.NewEngine(b.Build(), cfg), st.info(len(log), live), nil
	}
	tk, shards, log, extra, err := readSnapshot(f)
	if err != nil {
		return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: %w", path, err)
	}
	b := collection.NewBuilder(tk, true)
	for _, d := range log {
		if !d.Deleted {
			b.Add(d.Source)
		}
	}
	return core.NewEngine(b.Build(), cfg), snapInfo(version, shards, log, extra), nil
}

// OpenSharded loads any snapshot version as a sharded static engine.
// shards ≤ 0 restores the shard count the snapshot was saved with (1
// for version-1 and version-2 files); a positive value overrides it.
// Live documents are re-indexed densely in id order, exactly as Open
// does. A version-4 snapshot opened at its saved shard count reuses the
// persisted routing table — the saved partition comes back exactly, no
// re-clustering pass; older versions and overridden shard counts
// repartition from scratch (similarity-aware unless cfg.NoRoute).
func OpenSharded(path string, cfg Config, shards int) (*ShardedEngine, SnapshotInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, SnapshotInfo{}, err
	}
	defer f.Close()
	version, err := sniffVersion(f)
	if err != nil {
		return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: %w", path, err)
	}
	var tk Tokenizer
	var docs []string
	var assign []int32
	var info SnapshotInfo
	if version == 1 {
		c, err := collection.Read(f)
		if err != nil {
			return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: %w", path, err)
		}
		if !c.HasSource() {
			return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: legacy snapshot lacks sources; cannot repartition", path)
		}
		tk = c.Tokenizer()
		docs = make([]string, c.NumSets())
		for i := range docs {
			docs[i] = c.Source(collection.SetID(i))
		}
		info = SnapshotInfo{Version: 1, Docs: len(docs), Live: len(docs), Shards: 1}
	} else if version == snapV5 {
		st, lerr := loadStore(path, f)
		if lerr != nil {
			return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: %w", path, lerr)
		}
		log, lerr := st.foldTail()
		if lerr != nil {
			return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: %w", path, lerr)
		}
		tk = st.tk
		for i, d := range log {
			if d.Deleted {
				continue
			}
			docs = append(docs, d.Source)
			if len(st.tail) == 0 {
				// Package membership is the saved routing; only valid when
				// no un-checkpointed mutations follow it.
				assign = append(assign, st.routing[i])
			}
		}
		info = st.info(len(log), len(docs))
	} else {
		var saved int
		var log []core.DocState
		var extra *snapExtra
		tk, saved, log, extra, err = readSnapshot(f)
		if err != nil {
			return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: %w", path, err)
		}
		for i, d := range log {
			if d.Deleted {
				continue
			}
			docs = append(docs, d.Source)
			if extra != nil {
				// Filter the routing table down to the live documents,
				// matching their dense re-indexing.
				assign = append(assign, extra.routing[i])
			}
		}
		info = snapInfo(version, saved, log, extra)
	}
	if shards <= 0 {
		shards = info.Shards
	}
	if shards != info.Shards || cfg.NoRoute {
		assign = nil // saved routing is only valid at the saved fan-out
	}
	return core.BuildShardedRouted(tk, docs, true, shards, assign, cfg), info, nil
}

// OpenLive loads any snapshot version as a mutable engine and reports
// what was read. The document log is replayed — tombstoned entries
// included, preserving ids — and compacted before OpenLive returns.
// When cfg.Shards is unset, a version-3 or newer snapshot restores the
// shard count it was saved with; setting cfg.Shards overrides it. The
// routing table of a version-4 snapshot is not replayed: the closing
// Compact re-clusters deterministically, reproducing the same partition
// the snapshot carried (hash partitioning under cfg.NoRoute).
//
// A version-5 durable store additionally performs crash recovery: the
// checkpoint log from the manifest's segment packages is replayed and
// compacted, then the WAL tail — every intact record past the
// checkpoint, a torn final record excluded — replays through the
// normal mutation path. Use OpenDurable to continue journaling into
// the same store.
func OpenLive(path string, cfg LiveConfig) (*LiveEngine, SnapshotInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, SnapshotInfo{}, err
	}
	defer f.Close()
	version, err := sniffVersion(f)
	if err != nil {
		return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: %w", path, err)
	}
	var tk Tokenizer
	var log []core.DocState
	var info SnapshotInfo
	switch version {
	case 1:
		c, err := collection.Read(f)
		if err != nil {
			return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: %w", path, err)
		}
		if !c.HasSource() {
			return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: legacy snapshot lacks sources; cannot replay into a live engine", path)
		}
		tk = c.Tokenizer()
		log = make([]core.DocState, c.NumSets())
		for i := range log {
			log[i] = core.DocState{Source: c.Source(collection.SetID(i))}
		}
		info = SnapshotInfo{Version: 1, Docs: len(log), Live: len(log), Shards: 1}
	case snapV5:
		st, lerr := loadStore(path, f)
		if lerr != nil {
			return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: %w", path, lerr)
		}
		return openLiveV5(path, st, cfg)
	default:
		var saved int
		var extra *snapExtra
		tk, saved, log, extra, err = readSnapshot(f)
		if err != nil {
			return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: %w", path, err)
		}
		info = snapInfo(version, saved, log, extra)
	}
	if cfg.Shards <= 0 {
		cfg.Shards = info.Shards
	}
	le := core.NewLive(tk, cfg)
	for _, d := range log {
		id, err := le.Insert(d.Source)
		if err != nil {
			le.Close()
			return nil, SnapshotInfo{}, fmt.Errorf("setsim: load %s: replay: %w", path, err)
		}
		if d.Deleted {
			le.Delete(id)
		}
	}
	le.Compact()
	return le, info, nil
}

// Load reads a snapshot written by Save (or SaveLive) and rebuilds the
// indexes per cfg. The file's checksum is verified; a corrupt file
// yields an error wrapping collection.ErrBadCollection, and a snapshot
// from a newer format version one wrapping ErrUnknownVersion.
func Load(path string, cfg Config) (*Engine, error) {
	e, _, err := Open(path, cfg)
	return e, err
}

// SaveLists additionally writes the disk-resident inverted-list file
// (the invlist binary format) so that queries can run against on-disk
// lists via LoadWithLists instead of rebuilding an in-memory store.
func SaveLists(path string, e *Engine) error {
	return invlist.WriteFile(path, e.Collection(), 0)
}

// LoadWithLists opens a collection saved with Save plus a list file
// written by SaveLists, and serves queries from the on-disk lists.
func LoadWithLists(collectionPath, listsPath string, cfg Config) (*Engine, error) {
	f, err := os.Open(collectionPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	c, err := collection.Read(f)
	if err != nil {
		return nil, fmt.Errorf("setsim: load %s: %w", collectionPath, err)
	}
	store, err := invlist.OpenFile(listsPath)
	if err != nil {
		return nil, fmt.Errorf("setsim: open lists %s: %w", listsPath, err)
	}
	cfg.Store = store
	return core.NewEngine(c, cfg), nil
}
