package setsim_test

import (
	"math"
	"testing"

	"repro/setsim"
)

var corpus = []string{
	"main street",
	"maine street",
	"main st",
	"florham park",
	"park avenue",
	"wall street",
}

func TestBuildAndSelect(t *testing.T) {
	idx := setsim.Build(corpus, setsim.QGramTokenizer{Q: 3}, setsim.ListsOnly())
	q := idx.Prepare("main street")
	res, stats, err := idx.Select(q, 0.9, setsim.SF, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || idx.Collection().Source(res[0].ID) != "main street" {
		t.Fatalf("results = %+v", res)
	}
	if math.Abs(res[0].Score-1) > 1e-9 {
		t.Errorf("exact-match score %g", res[0].Score)
	}
	if stats.ListTotal == 0 {
		t.Error("stats not populated")
	}
}

func TestAllPublicAlgorithmsAgree(t *testing.T) {
	idx := setsim.Build(corpus, setsim.QGramTokenizer{Q: 3}, setsim.Config{})
	q := idx.Prepare("maine stret")
	want, _, err := idx.Select(q, 0.5, setsim.Naive, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("oracle returned nothing; bad test fixture")
	}
	for _, alg := range setsim.Algorithms() {
		got, _, err := idx.Select(q, 0.5, alg, nil)
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%v: %d results, want %d", alg, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				t.Fatalf("%v: result %d = id %d, want %d", alg, i, got[i].ID, want[i].ID)
			}
		}
	}
}

func TestTopKPublic(t *testing.T) {
	idx := setsim.Build(corpus, setsim.QGramTokenizer{Q: 3}, setsim.ListsOnly())
	q := idx.Prepare("main street")
	res, _, err := idx.SelectTopK(q, 3, setsim.SF, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("top-3 returned %d", len(res))
	}
	if idx.Collection().Source(res[0].ID) != "main street" {
		t.Errorf("rank 1 = %q", idx.Collection().Source(res[0].ID))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Error("top-k not sorted by score")
		}
	}
}

func TestBatchPublic(t *testing.T) {
	idx := setsim.Build(corpus, setsim.QGramTokenizer{Q: 3}, setsim.ListsOnly())
	queries := []setsim.Query{idx.Prepare("main street"), idx.Prepare("park")}
	out := idx.SelectBatch(queries, 0.5, setsim.SF, nil, 2)
	if len(out) != 2 {
		t.Fatalf("%d batch results", len(out))
	}
	for i, br := range out {
		if br.Err != nil {
			t.Errorf("query %d: %v", i, br.Err)
		}
	}
	if len(out[0].Results) == 0 {
		t.Error("batch query 0 found nothing")
	}
}

func TestWordTokenizerPublic(t *testing.T) {
	idx := setsim.Build([]string{"alpha beta gamma", "beta gamma delta"},
		setsim.WordTokenizer{}, setsim.ListsOnly())
	q := idx.Prepare("beta gamma")
	res, _, err := idx.Select(q, 0.3, setsim.SF, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("word-token query found %d sets", len(res))
	}
}

func TestSelfJoinPublic(t *testing.T) {
	idx := setsim.Build(corpus, setsim.QGramTokenizer{Q: 3}, setsim.ListsOnly())
	pairs, err := idx.SelfJoin(0.45, setsim.SF, nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range pairs {
		a := idx.Collection().Source(p.A)
		b := idx.Collection().Source(p.B)
		if (a == "main street" && b == "maine street") ||
			(a == "maine street" && b == "main street") {
			found = true
		}
	}
	if !found {
		t.Errorf("join missed the main/maine pair: %v", pairs)
	}
}
