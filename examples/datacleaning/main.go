// Data cleaning: the paper's motivating scenario (§I). A customer table
// contains dirty duplicates — typos, formatting noise. We index every
// record, run one selection query per record in parallel, and union the
// matches into duplicate clusters.
//
//	go run ./examples/datacleaning
package main

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/dataset"
	"repro/setsim"
)

func main() {
	// Synthesize a dirty customer table: 60 true entities, 3 noisy
	// copies each (the cu-style error model of the Table I experiment).
	rng := rand.New(rand.NewSource(7))
	cu := dataset.CUDatasets(rng, 60, 3, 0)[4] // cu5: moderate errors
	records := cu.Records
	fmt.Printf("customer table: %d records (%d true entities)\n\n", len(records), 60)

	idx := setsim.Build(records, setsim.QGramTokenizer{Q: 3}, setsim.ListsOnly())

	// One selection query per record, fanned out over a worker pool.
	queries := make([]setsim.Query, len(records))
	for i, r := range records {
		queries[i] = idx.Prepare(r)
	}
	const tau = 0.6
	batch := idx.SelectBatch(queries, tau, setsim.SF, nil, 0)

	// Union-find over match pairs.
	parent := make([]int, len(records))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	pairs := 0
	for i, br := range batch {
		if br.Err != nil {
			panic(br.Err)
		}
		for _, r := range br.Results {
			j := int(r.ID)
			if i == j {
				continue
			}
			pairs++
			pi, pj := find(i), find(j)
			if pi != pj {
				parent[pi] = pj
			}
		}
	}

	clusters := map[int][]int{}
	for i := range records {
		root := find(i)
		clusters[root] = append(clusters[root], i)
	}
	fmt.Printf("tau = %.2f: %d match pairs -> %d clusters\n\n", tau, pairs/2, len(clusters))

	// Accuracy against ground truth: a cluster is pure if all members
	// share the true entity.
	pure, multi := 0, 0
	for _, members := range clusters {
		truth := cu.Cluster[members[0]]
		ok := true
		for _, m := range members {
			if cu.Cluster[m] != truth {
				ok = false
			}
		}
		if ok {
			pure++
		}
		if len(members) > 1 {
			multi++
		}
	}
	fmt.Printf("cluster purity: %d/%d pure, %d clusters merged >1 record\n\n",
		pure, len(clusters), multi)

	// Show the three largest clusters.
	var roots []int
	for r := range clusters {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return len(clusters[roots[i]]) > len(clusters[roots[j]]) })
	for _, r := range roots[:3] {
		fmt.Println("cluster:")
		for _, m := range clusters[r] {
			fmt.Printf("  %q\n", records[m])
		}
	}
}
