// Quickstart: index a handful of address strings as 3-gram sets and run
// one selection query with the Shortest-First algorithm.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/setsim"
)

func main() {
	corpus := []string{
		"Main St., Main",
		"Main St., Maine",
		"Main Street",
		"Maine Street",
		"Florham Park NJ",
		"Park Avenue NY",
		"Wall Street NY",
		"185 Park Avenue Florham Park",
	}

	// Build the index: 3-gram tokens, inverted lists + skip lists only
	// (SF needs nothing more).
	idx := setsim.Build(corpus, setsim.QGramTokenizer{Q: 3}, setsim.ListsOnly())

	query := "Maine Str."
	q := idx.Prepare(query)
	fmt.Printf("query %q: %d distinct grams, len(q) = %.2f\n\n", query, len(q.Tokens), q.Len)

	for _, tau := range []float64{0.9, 0.7, 0.5} {
		res, stats, err := idx.Select(q, tau, setsim.SF, nil)
		if err != nil {
			panic(err)
		}
		fmt.Printf("tau = %.1f  (%d results, read %d of %d postings, %.0f%% pruned)\n",
			tau, len(res), stats.ElementsRead, stats.ListTotal, stats.PruningPower())
		for _, r := range res {
			fmt.Printf("  %.4f  %s\n", r.Score, idx.Collection().Source(r.ID))
		}
		fmt.Println()
	}
}
