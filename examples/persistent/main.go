// Persistent index: build once, save the collection and the
// disk-resident inverted lists, then reopen and serve queries from the
// on-disk lists — the paper's deployment model (§VIII keeps the 5GB of
// lists on disk and leaves caching to the OS).
//
//	go run ./examples/persistent
package main

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/setsim"
)

func main() {
	dir, err := os.MkdirTemp("", "setsim-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	colPath := filepath.Join(dir, "words.sscol")
	listPath := filepath.Join(dir, "words.ssidx")

	// Build from a synthetic word corpus and persist both files.
	rng := rand.New(rand.NewSource(5))
	words := dataset.Words(dataset.IMDBLike(rng, 30000))
	idx := setsim.Build(words, setsim.QGramTokenizer{Q: 3}, setsim.ListsOnly())
	if err := setsim.Save(colPath, idx); err != nil {
		panic(err)
	}
	if err := setsim.SaveLists(listPath, idx); err != nil {
		panic(err)
	}
	ci, _ := os.Stat(colPath)
	li, _ := os.Stat(listPath)
	fmt.Printf("saved %d words: collection %d KB, inverted lists %d KB\n\n",
		len(words), ci.Size()/1024, li.Size()/1024)

	// Reopen: queries now run against the on-disk lists.
	disk, err := setsim.LoadWithLists(colPath, listPath, setsim.ListsOnly())
	if err != nil {
		panic(err)
	}
	// Pick a reasonably long word so a one-edit probe still shares grams
	// with the corpus.
	base := words[100]
	for _, w := range words {
		if len(w) >= 10 {
			base = w
			break
		}
	}
	probe := dataset.Modify(rng, base, 1)
	q := disk.Prepare(probe)
	if len(q.Tokens) == 0 {
		fmt.Println("probe shares no grams with the corpus; nothing to do")
		return
	}
	res, stats, err := disk.Select(q, 0.6, setsim.SF, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("query %q over on-disk lists (%v, %d postings read, %d skipped):\n",
		probe, stats.Elapsed, stats.ElementsRead, stats.ElementsSkipped)
	for _, r := range res {
		fmt.Printf("  %.4f  %s\n", r.Score, disk.Collection().Source(r.ID))
	}
}
