// Approximate word matching: the paper's IMDB experiment in miniature
// (§VIII-A). A dictionary of words is indexed as 3-gram sets; misspelled
// probes are answered with the SF algorithm, and the same workload is
// run through the sort-by-id baseline to show the pruning gap.
//
//	go run ./examples/spellcheck
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/dataset"
	"repro/setsim"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	rows := dataset.IMDBLike(rng, 40000)
	words := dataset.Words(rows)
	fmt.Printf("dictionary: %d distinct words from %d rows\n\n", len(words), len(rows))

	idx := setsim.Build(words, setsim.QGramTokenizer{Q: 3}, setsim.ListsOnly())

	// Misspell 200 random dictionary words with 1-2 edits.
	probes := make([]string, 200)
	for i := range probes {
		w := words[rng.Intn(len(words))]
		probes[i] = dataset.Modify(rng, w, 1+rng.Intn(2))
	}

	const tau = 0.7
	run := func(alg setsim.Algorithm) (time.Duration, int, float64) {
		var elapsed time.Duration
		var read, total, found int
		for _, p := range probes {
			q := idx.Prepare(p)
			if len(q.Tokens) == 0 {
				continue // every gram of the probe is out-of-vocabulary
			}
			res, st, err := idx.Select(q, tau, alg, nil)
			if err != nil {
				panic(err)
			}
			elapsed += st.Elapsed
			read += st.ElementsRead
			total += st.ListTotal
			found += len(res)
		}
		pruned := 100 * (1 - float64(read)/float64(total))
		return elapsed, found, pruned
	}

	sfTime, sfFound, sfPruned := run(setsim.SF)
	mergeTime, mergeFound, _ := run(setsim.SortByID)
	fmt.Printf("SF:         %8v total, %d suggestions, %.1f%% of postings pruned\n",
		sfTime.Round(time.Microsecond), sfFound, sfPruned)
	fmt.Printf("sort-by-id: %8v total, %d suggestions, 0%% pruned (full merge)\n",
		mergeTime.Round(time.Microsecond), mergeFound)
	fmt.Printf("speedup: %.1fx\n\n", float64(mergeTime)/float64(sfTime))

	// Show a few corrections.
	for _, p := range probes[:5] {
		q := idx.Prepare(p)
		if len(q.Tokens) == 0 {
			continue
		}
		res, _, _ := idx.Select(q, tau, setsim.SF, nil)
		best := "(no match)"
		var bestScore float64
		for _, r := range res {
			if r.Score > bestScore {
				bestScore = r.Score
				best = idx.Collection().Source(r.ID)
			}
		}
		fmt.Printf("  %-18q -> %-18q (%.3f)\n", p, best, bestScore)
	}
}
