// Top-k extension (§X): instead of a threshold, ask for the k most
// similar sets. The SF-topk variant raises the pruning bound to the k-th
// best lower bound as it scans, reading a fraction of the lists.
//
//	go run ./examples/topk
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/dataset"
	"repro/setsim"
)

func main() {
	rng := rand.New(rand.NewSource(21))
	rows := dataset.DBLPLike(rng, 8000)
	fmt.Printf("corpus: %d citation-title-like rows\n\n", len(rows))

	// Index whole titles as word sets — top-k over records rather than
	// words, the "related titles" use case.
	idx := setsim.Build(rows, setsim.WordTokenizer{}, setsim.ListsOnly())

	probe := rows[rng.Intn(len(rows))]
	fmt.Printf("probe: %q\n\n", probe)
	q := idx.Prepare(probe)

	for _, k := range []int{1, 5} {
		res, stats, err := idx.SelectTopK(q, k, setsim.SF, nil)
		if err != nil {
			panic(err)
		}
		fmt.Printf("top-%d (read %d of %d postings):\n", k, stats.ElementsRead, stats.ListTotal)
		for rank, r := range res {
			fmt.Printf("  %d. %.4f  %s\n", rank+1, r.Score, idx.Collection().Source(r.ID))
		}
		fmt.Println()
	}

	// Verify against the exhaustive oracle.
	want, _, err := idx.SelectTopK(q, 5, setsim.Naive, nil)
	if err != nil {
		panic(err)
	}
	got, _, err := idx.SelectTopK(q, 5, setsim.SF, nil)
	if err != nil {
		panic(err)
	}
	same := len(got) == len(want)
	for i := range got {
		if !same || got[i].Score-want[i].Score > 1e-9 || want[i].Score-got[i].Score > 1e-9 {
			same = false
		}
	}
	fmt.Printf("SF top-5 matches exhaustive scan: %v\n", same)
}
