// Package repro's root benchmarks regenerate, one testing.B target per
// table and figure, the measurements of the paper's evaluation (§VIII).
// Each benchmark reports wall time per query plus custom metrics
// (pruned%, results/query, probes/query) so `go test -bench=.` prints
// the quantities the corresponding figure plots. The full parameter
// sweeps with paper-style tables come from cmd/ssbench.
package repro

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
)

// benchEnv is shared across benchmarks (built once; ~30k rows keeps the
// full suite fast while preserving the paper's relative behaviour).
var (
	envOnce sync.Once
	env     *experiments.Env
)

func getEnv(b *testing.B) *experiments.Env {
	b.Helper()
	envOnce.Do(func() {
		env = experiments.BuildEnv(experiments.Setup{Seed: 1, Rows: 30000, Queries: 100, SkipInterval: 8})
	})
	return env
}

// queriesFor prepares one workload's queries against the shared engine.
func queriesFor(b *testing.B, bucket dataset.SizeBucket, mods int) []core.Query {
	e := getEnv(b)
	wl := e.Workload(bucket, mods)
	out := make([]core.Query, 0, len(wl.Queries))
	for _, w := range wl.Queries {
		q := e.E.Prepare(w)
		if len(q.Tokens) > 0 {
			out = append(out, q)
		}
	}
	if len(out) == 0 {
		b.Fatal("no usable queries")
	}
	return out
}

// runSelect measures one algorithm over a prepared query set, reporting
// the figure's metrics.
func runSelect(b *testing.B, queries []core.Query, tau float64, alg core.Algorithm, opts *core.Options) {
	e := getEnv(b)
	var reads, total, results, probes int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		res, st, err := e.E.Select(q, tau, alg, opts)
		if err != nil {
			b.Fatal(err)
		}
		reads += st.ElementsRead
		total += st.ListTotal
		results += len(res)
		probes += st.RandomProbes
	}
	b.StopTimer()
	if total > 0 {
		b.ReportMetric(100*(1-float64(reads)/float64(total)), "pruned%")
	}
	b.ReportMetric(float64(results)/float64(b.N), "results/query")
	if probes > 0 {
		b.ReportMetric(float64(probes)/float64(b.N), "probes/query")
	}
}

// BenchmarkTable1Precision regenerates one Table I cell: the average
// precision of all four measures on a cu-style dataset.
func BenchmarkTable1Precision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(int64(i)+1, 40, 3, 20)
		if len(rows) != 8 {
			b.Fatal("bad Table I result")
		}
	}
}

// BenchmarkFig5IndexSize measures index construction (whose output sizes
// are Fig. 5) and reports the component sizes as metrics.
func BenchmarkFig5IndexSize(b *testing.B) {
	e := getEnv(b)
	z := experiments.Fig5(e)
	b.ReportMetric(float64(z.Relational.QGramTable+z.Relational.BTree)/(1<<20), "sqlMB")
	b.ReportMetric(float64(z.Lists.Total())/(1<<20), "listsMB")
	b.ReportMetric(float64(z.ExtHash)/(1<<20), "hashMB")
	for i := 0; i < b.N; i++ {
		if experiments.Fig5(e).Lists.WeightLists == 0 {
			b.Fatal("empty sizes")
		}
	}
}

// BenchmarkFig6aThreshold: wall-clock per query versus τ (11–15 grams).
func BenchmarkFig6aThreshold(b *testing.B) {
	queries := queriesFor(b, dataset.SizeBuckets[2], 0)
	for _, tau := range []float64{0.6, 0.8, 0.9} {
		for _, alg := range []core.Algorithm{core.SortByID, core.SQL, core.TA, core.NRA, core.ITA, core.INRA, core.SF, core.Hybrid} {
			b.Run(alg.String()+"/tau="+ftoa(tau), func(b *testing.B) {
				runSelect(b, queries, tau, alg, nil)
			})
		}
	}
}

// BenchmarkFig6bQuerySize: wall-clock per query versus query size (τ=0.8).
func BenchmarkFig6bQuerySize(b *testing.B) {
	for _, bucket := range dataset.SizeBuckets {
		queries := queriesFor(b, bucket, 0)
		for _, alg := range []core.Algorithm{core.SortByID, core.SQL, core.INRA, core.SF} {
			b.Run(alg.String()+"/size="+bucket.Name, func(b *testing.B) {
				runSelect(b, queries, 0.8, alg, nil)
			})
		}
	}
}

// BenchmarkFig6cModifications: wall-clock per query versus query
// modifications (τ=0.6, 11–15 grams).
func BenchmarkFig6cModifications(b *testing.B) {
	for _, mods := range []int{0, 2} {
		queries := queriesFor(b, dataset.SizeBuckets[2], mods)
		for _, alg := range []core.Algorithm{core.SortByID, core.INRA, core.SF, core.Hybrid} {
			b.Run(alg.String()+"/mods="+itoa(mods), func(b *testing.B) {
				runSelect(b, queries, 0.6, alg, nil)
			})
		}
	}
}

// BenchmarkFig7Pruning: the pruned% metric is the figure's y-axis; the
// inverted-list lineup at τ = 0.8.
func BenchmarkFig7Pruning(b *testing.B) {
	queries := queriesFor(b, dataset.SizeBuckets[2], 0)
	for _, alg := range []core.Algorithm{core.SortByID, core.TA, core.NRA, core.ITA, core.INRA, core.SF, core.Hybrid} {
		b.Run(alg.String(), func(b *testing.B) {
			runSelect(b, queries, 0.8, alg, nil)
		})
	}
}

// BenchmarkFig8LengthBounding: each algorithm with and without Theorem 1.
func BenchmarkFig8LengthBounding(b *testing.B) {
	queries := queriesFor(b, dataset.SizeBuckets[2], 0)
	nlb := &core.Options{NoLengthBound: true}
	for _, alg := range []core.Algorithm{core.SQL, core.ITA, core.INRA, core.SF} {
		b.Run(alg.String()+"/LB", func(b *testing.B) { runSelect(b, queries, 0.8, alg, nil) })
		b.Run(alg.String()+"/NLB", func(b *testing.B) { runSelect(b, queries, 0.8, alg, nlb) })
	}
}

// BenchmarkFig9SkipLists: the improved algorithms with and without the
// skip index.
func BenchmarkFig9SkipLists(b *testing.B) {
	queries := queriesFor(b, dataset.SizeBuckets[2], 0)
	nsl := &core.Options{NoSkipIndex: true}
	for _, alg := range []core.Algorithm{core.ITA, core.INRA, core.SF, core.Hybrid} {
		b.Run(alg.String()+"/SL", func(b *testing.B) { runSelect(b, queries, 0.8, alg, nil) })
		b.Run(alg.String()+"/NSL", func(b *testing.B) { runSelect(b, queries, 0.8, alg, nsl) })
	}
}

// BenchmarkTopKSF exercises the top-k extension (§X).
func BenchmarkTopKSF(b *testing.B) {
	queries := queriesFor(b, dataset.SizeBuckets[2], 0)
	e := getEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.E.SelectTopK(queries[i%len(queries)], 10, core.SF, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchParallel exercises the parallel batch executor (§X).
func BenchmarkBatchParallel(b *testing.B) {
	queries := queriesFor(b, dataset.SizeBuckets[2], 0)
	e := getEnv(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := e.E.SelectBatch(queries, 0.8, core.SF, nil, 0)
		if len(out) != len(queries) {
			b.Fatal("batch size mismatch")
		}
	}
}

func ftoa(f float64) string {
	switch f {
	case 0.6:
		return "0.6"
	case 0.7:
		return "0.7"
	case 0.8:
		return "0.8"
	case 0.9:
		return "0.9"
	}
	return "x"
}

func itoa(n int) string { return string(rune('0' + n)) }
